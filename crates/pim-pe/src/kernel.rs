//! The flat compiled execution kernel shared by the sparse PEs.
//!
//! Both PE simulators used to *walk their hardware structures* to compute a
//! matvec — the SRAM PE swept `weight_bits × segments × slots` with a
//! branch on `slot.occupied` per cell, the MRAM PE streamed its packed rows
//! with the same branch. That step-wise walk is a simulation artifact: the
//! PEs are fully digital and deterministic, so the bit-serial / row-stream
//! arithmetic is mathematically identical to a plain sparse dot product
//! (bit-plane decomposition recombines to `Σ w·x` exactly; see
//! `pim_sparse::gemm::bit_serial_matvec`, the retained ground-truth
//! oracle).
//!
//! [`FlatKernel`] is the compiled form: at `load`/`update` time the
//! segment/slot (or row/pair) structure is flattened into cache-friendly
//! CSR-style arrays — `col_ptr`, `row_idx`, `val` — holding **occupied
//! slots only**, so the hot loop is a single-pass gather-multiply-
//! accumulate with no occupancy branch and no bit loop. Timing and energy
//! are *not* derived from the walk (they never depended on it — the cycle
//! and energy expressions are closed-form in the tile shape and config);
//! the PEs precompute them once per load as a [`MatvecCost`].
//!
//! Accumulation is exact: each `i8×i8` product and the running sum are
//! carried in `i64`, then truncated to `i32` exactly as the step-wise
//! simulators did, so outputs are bit-identical on every input including
//! `i8::MIN`/`i8::MAX` extremes.

/// A weight tile compiled to flat occupied-only CSR-style arrays.
///
/// Column `c`'s entries live at `col_ptr[c]..col_ptr[c+1]`; `row_idx[k]`
/// is the *logical* reduction row of entry `k` (group and offset already
/// resolved), `val[k]` its INT8 weight.
#[derive(Debug, Clone, Default)]
pub(crate) struct FlatKernel {
    /// Logical reduction length (expected input length).
    rows: usize,
    /// Logical output columns.
    cols: usize,
    /// `cols + 1` offsets into `row_idx`/`val`.
    col_ptr: Vec<u32>,
    /// Logical reduction row of each occupied entry.
    row_idx: Vec<u32>,
    /// Weight value of each occupied entry.
    val: Vec<i8>,
}

impl FlatKernel {
    /// Compiles occupied entries into the flat form.
    ///
    /// `entries` yields `(logical_col, logical_row, value)` with the
    /// logical column **non-decreasing** — the natural order both PEs pack
    /// their structures in. Columns with no occupied entries (empty
    /// columns) are valid and produce zero outputs.
    /// (Tests compile from scratch; the PEs keep a kernel resident and
    /// [`recompile`](Self::recompile) it in place.)
    #[cfg(test)]
    pub fn compile(
        rows: usize,
        cols: usize,
        entries: impl Iterator<Item = (usize, usize, i8)>,
    ) -> Self {
        let mut kernel = Self::default();
        kernel.recompile(rows, cols, entries);
        kernel
    }

    /// [`compile`](Self::compile) in place, reusing the existing arrays'
    /// capacity. The update/refresh path rewrites tiles at a fixed layout
    /// (same shape, same occupancy), so steady-state recompilation after a
    /// differential write touches the allocator not at all.
    pub fn recompile(
        &mut self,
        rows: usize,
        cols: usize,
        entries: impl Iterator<Item = (usize, usize, i8)>,
    ) {
        self.rows = rows;
        self.cols = cols;
        self.col_ptr.clear();
        self.row_idx.clear();
        self.val.clear();
        self.col_ptr.reserve(cols + 1);
        self.col_ptr.push(0u32);
        let mut cur = 0usize;
        for (c, r, v) in entries {
            debug_assert!(c >= cur, "entries must arrive in column order");
            debug_assert!(c < cols && r < rows, "entry outside the tile");
            while cur < c {
                self.col_ptr.push(self.row_idx.len() as u32);
                cur += 1;
            }
            self.row_idx.push(r as u32);
            self.val.push(v);
        }
        while cur < cols {
            self.col_ptr.push(self.row_idx.len() as u32);
            cur += 1;
        }
    }

    /// Logical output columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Stored (occupied) entries.
    pub fn nnz(&self) -> usize {
        self.val.len()
    }

    /// Single-pass gather-multiply-accumulate: `y[c] = Σ val·x[row_idx]`,
    /// bit-identical to the step-wise bit-serial / row-stream walk.
    ///
    /// # Panics
    ///
    /// Debug-asserts the operand lengths; the PEs validate them first.
    #[allow(clippy::needless_range_loop)] // c indexes y and brackets col_ptr
    pub fn matvec_into(&self, x: &[i8], y: &mut [i32]) {
        debug_assert_eq!(x.len(), self.rows);
        debug_assert_eq!(y.len(), self.cols);
        for c in 0..self.cols {
            let (s, e) = (self.col_ptr[c] as usize, self.col_ptr[c + 1] as usize);
            let mut acc = 0i64;
            for (&r, &v) in self.row_idx[s..e].iter().zip(&self.val[s..e]) {
                acc += v as i64 * x[r as usize] as i64;
            }
            y[c] = acc as i32;
        }
    }

    /// Batched matvec over `batch` row-major input vectors: input `b` is
    /// `xs[b·rows..(b+1)·rows]`, its outputs land in
    /// `y[b·cols..(b+1)·cols]`.
    ///
    /// Inputs are register-blocked four at a time so each `(row, weight)`
    /// entry loaded from the flat arrays feeds four accumulators — the
    /// weight stream is read once per block instead of once per input.
    /// Pure integer arithmetic, so identical to per-input
    /// [`matvec_into`](Self::matvec_into) calls.
    pub fn matmul_into(&self, xs: &[i8], batch: usize, y: &mut [i32]) {
        debug_assert_eq!(xs.len(), batch * self.rows);
        debug_assert_eq!(y.len(), batch * self.cols);
        let (rows, cols) = (self.rows, self.cols);
        let mut b = 0;
        while b + 4 <= batch {
            let x0 = &xs[b * rows..(b + 1) * rows];
            let x1 = &xs[(b + 1) * rows..(b + 2) * rows];
            let x2 = &xs[(b + 2) * rows..(b + 3) * rows];
            let x3 = &xs[(b + 3) * rows..(b + 4) * rows];
            for c in 0..cols {
                let (s, e) = (self.col_ptr[c] as usize, self.col_ptr[c + 1] as usize);
                let (mut a0, mut a1, mut a2, mut a3) = (0i64, 0i64, 0i64, 0i64);
                for (&r, &v) in self.row_idx[s..e].iter().zip(&self.val[s..e]) {
                    let (r, v) = (r as usize, v as i64);
                    a0 += v * x0[r] as i64;
                    a1 += v * x1[r] as i64;
                    a2 += v * x2[r] as i64;
                    a3 += v * x3[r] as i64;
                }
                y[b * cols + c] = a0 as i32;
                y[(b + 1) * cols + c] = a1 as i32;
                y[(b + 2) * cols + c] = a2 as i32;
                y[(b + 3) * cols + c] = a3 as i32;
            }
            b += 4;
        }
        while b < batch {
            self.matvec_into(
                &xs[b * rows..(b + 1) * rows],
                &mut y[b * cols..(b + 1) * cols],
            );
            b += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_columns_yield_zero() {
        // Entries only in column 1 of 3; columns 0 and 2 are empty.
        let k = FlatKernel::compile(4, 3, [(1usize, 0usize, 2i8), (1, 3, -1)].into_iter());
        let mut y = [99i32; 3];
        k.matvec_into(&[1, 2, 3, 4], &mut y);
        assert_eq!(y, [0, 2 - 4, 0]);
        assert_eq!(k.nnz(), 2);
        assert_eq!(k.cols(), 3);
    }

    #[test]
    fn fully_empty_kernel_is_all_zero() {
        let k = FlatKernel::compile(2, 2, std::iter::empty());
        let mut y = [7i32; 2];
        k.matvec_into(&[5, 5], &mut y);
        assert_eq!(y, [0, 0]);
    }

    #[test]
    fn truncation_matches_i64_cast() {
        // Sum exceeding i32 range truncates exactly like the step-wise
        // simulators' `as i32`.
        let entries = (0..40_000).map(|i| (0usize, i % 4, i8::MAX));
        let k = FlatKernel::compile(4, 1, entries);
        let mut y = [0i32; 1];
        k.matvec_into(&[i8::MAX; 4], &mut y);
        let exact: i64 = 40_000i64 * (i8::MAX as i64) * (i8::MAX as i64);
        assert_eq!(y[0], exact as i32);
    }

    #[test]
    fn batched_equals_sequential() {
        let k = FlatKernel::compile(
            3,
            2,
            [(0usize, 0usize, 1i8), (0, 2, -2), (1, 1, 3)].into_iter(),
        );
        let xs = [1i8, 2, 3, -4, -5, -6];
        let mut batched = [0i32; 4];
        k.matmul_into(&xs, 2, &mut batched);
        let mut a = [0i32; 2];
        let mut b = [0i32; 2];
        k.matvec_into(&xs[..3], &mut a);
        k.matvec_into(&xs[3..], &mut b);
        assert_eq!(&batched[..2], &a);
        assert_eq!(&batched[2..], &b);
    }

    #[test]
    fn batched_covers_blocked_and_remainder_paths() {
        // batch = 6 exercises the 4-wide register-blocked pass and the
        // scalar remainder, including i8 extremes.
        let entries = [(0usize, 0usize, i8::MIN), (0, 3, 5i8), (1, 2, i8::MAX)];
        let k = FlatKernel::compile(4, 2, entries.into_iter());
        let xs: Vec<i8> = (0..24)
            .map(|i| match i % 5 {
                0 => i8::MIN,
                1 => i8::MAX,
                n => (n * 7) as i8 - 60,
            })
            .collect();
        let mut batched = vec![0i32; 12];
        k.matmul_into(&xs, 6, &mut batched);
        for b in 0..6 {
            let mut y = [0i32; 2];
            k.matvec_into(&xs[b * 4..(b + 1) * 4], &mut y);
            assert_eq!(&batched[b * 2..(b + 1) * 2], &y, "input {b}");
        }
    }
}
