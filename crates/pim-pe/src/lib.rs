//! Cycle-level simulators of the paper's two sparse processing engines.
//!
//! * [`SramSparsePe`] — the fully-digital bit-serial SRAM PE of Fig. 3:
//!   a 128×96 array (128×8 INT8 weights + 128×8 4-bit CSC indices), eight
//!   column groups each with an index generator, comparators, and an adder
//!   tree, plus a shift accumulator for bit-serial input precision and a
//!   row-wise accumulator for columns that spill across groups.
//! * [`MramSparsePe`] — the near-memory MRAM PE of Fig. 5: a 1024×512 MTJ
//!   array holding weight+index pairs, read row-by-row through a 3-stage
//!   pipeline (read idx+weight → fetch activation via MUX → parallel
//!   shift-accumulate), aggregated by an adder tree.
//! * [`TransposedSramPe`] — the transposed-weight buffer of Fig. 6 used
//!   during backpropagation: the current layer's weights (or errors) are
//!   transposed and *written* into SRAM each step, then used for error
//!   propagation `e^{l−1} = Wᵀ·e^l`.
//!
//! **Functional exactness invariant.** Every PE produces bit-identical
//! results to `pim_sparse`'s reference kernels on the same operands; the
//! cycle and energy numbers are modelled on top of the exact computation
//! (cycle model documented per PE; energy seeded from the paper's Table 2
//! via `pim-device`).
//!
//! # Example
//!
//! ```
//! use pim_pe::{SparsePe, SramSparsePe};
//! use pim_sparse::{CscMatrix, Matrix, NmPattern};
//!
//! let w = Matrix::from_fn(32, 8, |r, c| if r % 4 == 0 { (r + c) as i8 } else { 0 });
//! let csc = CscMatrix::compress_auto(&w, NmPattern::new(1, 4)?)?;
//! let mut pe = SramSparsePe::new();
//! pe.load(&csc)?;
//! let x: Vec<i8> = (0..32).map(|i| i as i8 - 16).collect();
//! let report = pe.matvec(&x)?;
//! let wide: Vec<i32> = x.iter().map(|&v| v as i32).collect();
//! assert_eq!(report.outputs, csc.matvec(&wide)?);
//! assert!(report.cycles > 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod error;
mod kernel;
mod mram;
mod sram;
mod stats;
pub mod telemetry;
mod transpose;

pub use error::PeError;
pub use mram::{FaultReport, MramPeConfig, MramSparsePe, StochasticWrites};
pub use sram::{SramPeConfig, SramSparsePe};
pub use stats::{LoadReport, MatvecCost, MatvecReport, PeStats};
pub use telemetry::PeTelemetry;
pub use transpose::TransposedSramPe;

use pim_sparse::CscMatrix;

/// Common interface of the sparse processing engines.
///
/// A PE holds one compressed weight tile at a time; the architecture layer
/// (`pim-arch`) tiles larger matrices across PEs or sequential loads.
pub trait SparsePe {
    /// Loads a compressed weight tile, replacing any previous contents.
    ///
    /// # Errors
    ///
    /// Returns [`PeError::CapacityExceeded`] if the tile does not fit the
    /// array, or [`PeError::PatternUnsupported`] if the pattern's index
    /// width exceeds the 4-bit hardware field.
    fn load(&mut self, weights: &CscMatrix) -> Result<LoadReport, PeError>;

    /// Computes `y[c] = Σ_r W[r][c]·x[r]` on the loaded tile, bit-exactly.
    ///
    /// # Errors
    ///
    /// Returns [`PeError::NotLoaded`] if no tile is loaded, or
    /// [`PeError::InputLength`] on an operand length mismatch.
    fn matvec(&mut self, x: &[i8]) -> Result<MatvecReport, PeError>;

    /// Zero-alloc matvec: writes the outputs into caller-owned `y` (one
    /// `i32` per logical column) and returns the analytic per-matvec
    /// [`MatvecCost`]. Outputs, statistics, and the returned cost are
    /// bit-identical to [`matvec`](Self::matvec) on the same operand.
    ///
    /// The default implementation delegates to `matvec` (allocating); the
    /// concrete PEs override it with their compiled flat kernel.
    ///
    /// # Errors
    ///
    /// Same conditions as [`matvec`](Self::matvec).
    ///
    /// # Panics
    ///
    /// Panics if `y.len()` differs from the loaded tile's column count.
    fn matvec_into(&mut self, x: &[i8], y: &mut [i32]) -> Result<MatvecCost, PeError> {
        let report = self.matvec(x)?;
        assert_eq!(
            y.len(),
            report.outputs.len(),
            "output buffer does not match the tile's column count"
        );
        y.copy_from_slice(&report.outputs);
        Ok(report.cost())
    }

    /// Batched matvec over `batch` row-major input vectors: input `b` is
    /// `xs[b·rows..(b+1)·rows]`, its outputs land in
    /// `y[b·cols..(b+1)·cols]`. Functionally and statistically identical
    /// to `batch` sequential [`matvec_into`](Self::matvec_into) calls —
    /// `batch` matvecs land in [`stats`](Self::stats) — but the tile is
    /// swept once per input with the flat weight arrays staying
    /// cache-resident, which is where the batching speedup comes from.
    ///
    /// Returns the **per-matvec** cost (every matvec on a loaded tile
    /// costs the same; the batch's total is `batch ×` the returned cost).
    ///
    /// # Errors
    ///
    /// Same conditions as [`matvec`](Self::matvec); operand lengths are
    /// validated against `batch × rows` / `batch × cols`.
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero or `y.len() != batch × cols`.
    fn matvec_batch(
        &mut self,
        xs: &[i8],
        batch: usize,
        y: &mut [i32],
    ) -> Result<MatvecCost, PeError> {
        assert!(batch > 0, "batch must be non-empty");
        assert_eq!(y.len() % batch, 0, "output buffer must split evenly");
        let rows = xs.len() / batch;
        let cols = y.len() / batch;
        let mut cost = MatvecCost::default();
        for b in 0..batch {
            cost = self.matvec_into(
                xs.get(b * rows..(b + 1) * rows)
                    .ok_or(PeError::InputLength {
                        expected: batch * rows,
                        actual: xs.len(),
                    })?,
                &mut y[b * cols..(b + 1) * cols],
            )?;
        }
        Ok(cost)
    }

    /// Cumulative statistics since construction or the last reset.
    fn stats(&self) -> &PeStats;

    /// Clears the cumulative statistics.
    fn reset_stats(&mut self);

    /// Total compressed weight slots the array can hold.
    fn capacity_slots(&self) -> usize;
}
