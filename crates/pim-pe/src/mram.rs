//! The near-memory MRAM sparse PE (paper Fig. 5).
//!
//! A 1024×512 MTJ array stores the sparse-encoded weights and their CSC
//! indices; all arithmetic happens in the digital periphery. Each 512-bit
//! row packs `pairs_per_row` weight+index pairs (12 bits each at
//! INT8 + 4-bit index). A matvec streams the rows of each logical column
//! through the 3-stage pipeline of Fig. 5-5:
//!
//! 1. **Read idx & weight** — the row decoder activates one row; sense
//!    amplifiers deliver the packed pairs;
//! 2. **Fetch activation** — the MUX selects, per pair, the activation at
//!    `group·M + offset` from the activation buffer;
//! 3. **Shift-acc** — the parallel shift-and-accumulator multiplies each
//!    INT8 weight by its activation (shift-add over the 8 weight bits,
//!    fully unrolled in hardware) and accumulates; the adder tree folds
//!    the per-pair accumulators into the column output.
//!
//! Steady-state throughput is one row per cycle; a matvec over a tile with
//! `R` occupied rows takes `R + 2` (pipeline fill) `+ 1` (adder-tree
//! drain) cycles.
//!
//! Writes are the expensive path: every toggled MTJ costs the Table 2
//! set/reset energy (0.048 pJ) and a 10 ns pulse, with a read-before-write
//! driver so **differential** updates only pay for changed bits. This
//! asymmetry is exactly why the frozen backbone lives here and the
//! learnable weights do not.

use crate::error::PeError;
use crate::kernel::{FlatKernel, PackedKernel};
use crate::stats::{LoadReport, MatvecCost, MatvecReport, PeStats};
use crate::SparsePe;
use pim_device::components::MramPeComponents;
use pim_device::mtj::{Mtj, MtjParams, MtjState};
use pim_device::units::Latency;
use pim_device::{EnergyLedger, TechnologyParams};
use pim_sparse::csc::CscSlot;
use pim_sparse::CscMatrix;

/// Geometry and technology of an MRAM sparse PE.
#[derive(Debug, Clone, PartialEq)]
pub struct MramPeConfig {
    /// Array rows.
    pub rows: usize,
    /// Row width in bits.
    pub row_bits: usize,
    /// Weight resolution in bits.
    pub weight_bits: u32,
    /// Hardware index field width in bits.
    pub index_bits: u32,
    /// Weight+index pairs packed per row.
    pub pairs_per_row: usize,
    /// Technology point.
    pub tech: TechnologyParams,
    /// Peripheral component library.
    pub components: MramPeComponents,
    /// MTJ device corner.
    pub mtj: MtjParams,
    /// When set, every weight bit of a [`SparsePe::load`] is driven through
    /// the stochastic [`Mtj::write_stochastic`] channel with write-verify
    /// retries; when `None` (the default) writes are ideal.
    pub stochastic: Option<StochasticWrites>,
}

/// Configuration of the stochastic write channel (see
/// [`MramPeConfig::stochastic`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StochasticWrites {
    /// Seed of the deterministic per-load noise stream.
    pub seed: u64,
    /// Write-verify retry budget per bit (0 = single pulse, no verify).
    pub max_retries: u32,
}

impl MramPeConfig {
    /// The paper's 1024×512 sub-array at 28 nm: 12-bit pairs, 42 per row
    /// (504 of 512 bits used; the remainder is spare/ECC).
    pub fn dac24() -> Self {
        Self {
            rows: 1024,
            row_bits: 512,
            weight_bits: 8,
            index_bits: 4,
            pairs_per_row: 42,
            tech: TechnologyParams::tsmc28(),
            components: MramPeComponents::dac24(),
            mtj: MtjParams::dac24(),
            stochastic: None,
        }
    }

    /// Compressed slots the array holds.
    pub fn capacity_slots(&self) -> usize {
        self.rows * self.pairs_per_row
    }

    /// Raw storage capacity in bits.
    pub fn capacity_bits(&self) -> u64 {
        (self.rows * self.row_bits) as u64
    }
}

impl Default for MramPeConfig {
    fn default() -> Self {
        Self::dac24()
    }
}

/// One stored array row: which logical column it serves and its pairs.
#[derive(Debug, Clone)]
struct StoredRow {
    logical_col: usize,
    /// `(logical_group, slot)` pairs packed in this row.
    pairs: Vec<(usize, CscSlot)>,
}

/// The MRAM sparse PE simulator. See the module-level documentation for
/// the pipeline and energy models.
///
/// Cloning a loaded PE duplicates its tile program and statistics — the
/// serving runtime uses this to replicate compiled tiles across workers.
#[derive(Debug, Clone)]
pub struct MramSparsePe {
    config: MramPeConfig,
    rows: Vec<StoredRow>,
    tile: Option<TileInfo>,
    /// Flat occupied-only execution kernel, compiled at load time from the
    /// packed rows — *after* any stochastic write faults land, so corrupted
    /// weights flow into the compiled program exactly as stored.
    kernel: FlatKernel,
    /// Bit-plane popcount kernel, selected per tile at load time when it
    /// beats the flat gather (dense/low-bit tiles); `None` keeps the flat
    /// path. Bit-identical either way.
    packed: Option<PackedKernel>,
    /// Analytic per-matvec cost of the resident tile, precomputed at load
    /// time (the cycle/energy model is data-independent).
    cost: MatvecCost,
    stats: PeStats,
}

#[derive(Debug, Clone)]
struct TileInfo {
    rows: usize,
    cols: usize,
    m: usize,
    occupied_slots: u64,
}

impl MramSparsePe {
    /// Creates a PE with the paper's default configuration.
    pub fn new() -> Self {
        Self::with_config(MramPeConfig::dac24())
    }

    /// Creates a PE with an explicit configuration.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate or a pair does not fit the row.
    pub fn with_config(config: MramPeConfig) -> Self {
        assert!(config.rows > 0 && config.pairs_per_row > 0, "degenerate PE");
        assert!(
            config.pairs_per_row * (config.weight_bits + config.index_bits) as usize
                <= config.row_bits,
            "pairs do not fit the row width"
        );
        Self {
            config,
            rows: Vec::new(),
            tile: None,
            kernel: FlatKernel::default(),
            packed: None,
            cost: MatvecCost::default(),
            stats: PeStats::new(),
        }
    }

    /// The PE configuration.
    pub fn config(&self) -> &MramPeConfig {
        &self.config
    }

    /// Array rows currently occupied.
    pub fn rows_used(&self) -> usize {
        self.rows.len()
    }

    /// Loads a tile through the **stochastic write channel**: a one-shot
    /// convenience wrapper that sets [`MramPeConfig::stochastic`] for the
    /// duration of one [`SparsePe::load`]. Every set weight bit switches a
    /// real [`Mtj`] with the device's per-pulse failure probability
    /// ([`MtjParams::write_error_rate`]), re-pulsed under write-verify up
    /// to `max_retries` times, and left erased if all pulses fail. The
    /// retry pulses cost extra write energy; residual faults corrupt the
    /// stored weights, which subsequent [`SparsePe::matvec`] calls then
    /// faithfully compute with — letting the higher layers measure the
    /// accuracy impact of MRAM write instability (a failure mode the
    /// paper's introduction calls out for NVM training). Retry and fault
    /// counts also land in [`PeStats::write_retries`] /
    /// [`PeStats::write_faults`].
    ///
    /// Deterministic for a given `seed`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`SparsePe::load`].
    pub fn load_with_faults(
        &mut self,
        weights: &CscMatrix,
        seed: u64,
        max_retries: u32,
    ) -> Result<FaultReport, PeError> {
        let saved = self.config.stochastic;
        self.config.stochastic = Some(StochasticWrites { seed, max_retries });
        let result = self.load(weights);
        self.config.stochastic = saved;
        let load = result?;
        Ok(FaultReport {
            retried_bits: load.retried_bits,
            corrupted_bits: load.faulted_bits,
            load,
        })
    }

    /// Drives every stored weight bit through an [`Mtj`] device's
    /// stochastic write channel with write-verify: a set bit that fails to
    /// switch within the retry budget is left in the erased (parallel, `0`)
    /// state, corrupting the stored weight. Returns
    /// `(retry_pulses, residual_faults)`.
    ///
    /// Writing a `0` into a freshly-erased cell hits the read-before-write
    /// gate and is a guaranteed no-op, so only set bits face the channel —
    /// matching the device model rather than a symmetric bit-flip channel.
    fn apply_stochastic_writes(&mut self, channel: StochasticWrites) -> (u64, u64) {
        if self.config.mtj.write_error_rate <= 0.0 {
            return (0, 0);
        }
        let proto = Mtj::with_params(self.config.mtj.clone()).expect("invalid MTJ parameters");
        let mut rng = SplitMix64::new(channel.seed);
        let mut retried_bits = 0u64;
        let mut faulted_bits = 0u64;
        for row in &mut self.rows {
            for (_, slot) in row.pairs.iter_mut().filter(|(_, s)| s.occupied) {
                let mut value = slot.value as u8;
                for bit in 0..8u8 {
                    if (value >> bit) & 1 == 0 {
                        continue;
                    }
                    let mut cell = proto.clone();
                    let (mut ok, _) = cell.write_stochastic(MtjState::AntiParallel, rng.next_f64());
                    let mut pulses = 0u32;
                    while !ok && pulses < channel.max_retries {
                        pulses += 1;
                        retried_bits += 1;
                        let (again, _) =
                            cell.write_stochastic(MtjState::AntiParallel, rng.next_f64());
                        ok = again;
                    }
                    if !ok {
                        debug_assert_eq!(cell.state(), MtjState::Parallel);
                        value &= !(1 << bit);
                        faulted_bits += 1;
                    }
                }
                slot.value = value as i8;
            }
        }
        (retried_bits, faulted_bits)
    }

    /// Recompiles the flat execution kernel and the analytic per-matvec
    /// cost from the freshly-stored rows — called at the end of every
    /// load, after any stochastic write faults have landed, so `matvec` is
    /// a branch-free single-pass gather over what the array really holds.
    fn recompile(&mut self) {
        let tile = self.tile.as_ref().expect("tile installed before recompile");
        let m = tile.m;
        self.kernel.recompile(
            tile.rows,
            tile.cols,
            self.rows.iter().flat_map(|row| {
                row.pairs
                    .iter()
                    .filter(|(_, s)| s.occupied)
                    .map(move |&(group, s)| {
                        (row.logical_col, group * m + s.offset as usize, s.value)
                    })
            }),
        );
        debug_assert_eq!(self.kernel.cols(), tile.cols);
        debug_assert_eq!(self.kernel.nnz() as u64, tile.occupied_slots);
        self.packed = PackedKernel::pack_if_profitable(&self.kernel);
        self.cost = self.analytic_matvec_cost();
    }

    /// The closed-form per-matvec bill of Fig. 5's 3-stage row stream —
    /// one row per cycle + 3 (fill/drain), every stored bit of every
    /// streamed row sensed, decoders and shift-acc/adder-tree active
    /// throughout. Depends only on the stored layout and configuration,
    /// never on the activations, which is why it can be precomputed at
    /// load time.
    fn analytic_matvec_cost(&self) -> MatvecCost {
        let cycles = self.rows.len() as u64 + 3;
        let latency = Latency::from_cycles(cycles, self.config.tech.clock_mhz());
        let comp = &self.config.components;
        let mut energy = self.peripheral_leakage(latency);
        let pair_bits = (self.config.weight_bits + self.config.index_bits) as u64;
        let bits_read: u64 = self
            .rows
            .iter()
            .map(|r| r.pairs.len() as u64 * pair_bits)
            .sum();
        energy.add_read(self.config.mtj.read_energy * bits_read as f64);
        energy.add_read(
            (comp.row_decoder_driver.power() + comp.col_decoder_driver.power()) * latency,
        );
        energy.add_compute((comp.parallel_shift_acc.power() + comp.adder_tree.power()) * latency);
        MatvecCost {
            cycles,
            latency,
            energy,
        }
    }

    /// Peripheral-logic leakage over `elapsed` (the MTJ array itself is
    /// non-volatile and leaks nothing — the core MRAM advantage).
    fn peripheral_leakage(&self, elapsed: Latency) -> EnergyLedger {
        let mut e = EnergyLedger::new();
        // Model peripheral leakage as 0.5% of the active peripheral power —
        // clock-gated digital standby at 28 nm.
        e.add_leakage(self.config.components.total_power() * 0.005 * elapsed);
        e
    }
}

impl Default for MramSparsePe {
    fn default() -> Self {
        Self::new()
    }
}

/// Result of a fault-injected load (see
/// [`MramSparsePe::load_with_faults`]).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultReport {
    /// The underlying load report, including retry energy.
    pub load: LoadReport,
    /// Write pulses repeated by the write-verify loop.
    pub retried_bits: u64,
    /// Bits left flipped after exhausting the retry budget.
    pub corrupted_bits: u64,
}

/// Tiny deterministic PRNG (SplitMix64) so fault injection needs no
/// external RNG dependency.
struct SplitMix64(u64);

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        Self(seed.wrapping_add(0x9E3779B97F4A7C15))
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl SparsePe for MramSparsePe {
    fn load(&mut self, weights: &CscMatrix) -> Result<LoadReport, PeError> {
        let pattern = weights.pattern();
        if pattern.index_bits() > self.config.index_bits {
            return Err(PeError::PatternUnsupported {
                needed_bits: pattern.index_bits(),
                hardware_bits: self.config.index_bits,
            });
        }
        // Pack each logical column into whole rows (a row never mixes
        // columns, so the adder tree folds cleanly).
        let rows_per_col = weights.slots_per_col().div_ceil(self.config.pairs_per_row);
        let rows_needed = rows_per_col * weights.cols();
        if rows_needed > self.config.rows {
            return Err(PeError::CapacityExceeded {
                required: rows_needed * self.config.pairs_per_row,
                available: self.config.capacity_slots(),
            });
        }

        let n = pattern.n();
        let mut rows = Vec::with_capacity(rows_needed);
        let mut occupied = 0u64;
        for c in 0..weights.cols() {
            let col_slots = weights.column_slots(c);
            for (chunk_idx, chunk) in col_slots.chunks(self.config.pairs_per_row).enumerate() {
                let base_slot = chunk_idx * self.config.pairs_per_row;
                let pairs: Vec<(usize, CscSlot)> = chunk
                    .iter()
                    .enumerate()
                    .map(|(i, &s)| ((base_slot + i) / n, s))
                    .collect();
                occupied += pairs.iter().filter(|(_, s)| s.occupied).count() as u64;
                rows.push(StoredRow {
                    logical_col: c,
                    pairs,
                });
            }
        }
        let rows_written = rows.len() as u64;
        self.rows = rows;
        self.tile = Some(TileInfo {
            rows: weights.rows(),
            cols: weights.cols(),
            m: pattern.m(),
            occupied_slots: occupied,
        });

        // Optional stochastic write channel: per-bit MTJ switching with
        // write-verify retries (see [`MramPeConfig::stochastic`]).
        let (retried_bits, faulted_bits) = match self.config.stochastic {
            Some(channel) => self.apply_stochastic_writes(channel),
            None => (0, 0),
        };
        // Compile after fault injection: the kernel must execute the
        // (possibly corrupted) stored weights, not the requested ones.
        self.recompile();

        // Write cost: one row per write pulse; on average half of the MTJs
        // toggle under the differential (read-before-write) driver.
        let pair_bits = (self.config.weight_bits + self.config.index_bits) as u64;
        let total_bits: u64 = self
            .rows
            .iter()
            .map(|r| r.pairs.len() as u64 * pair_bits)
            .sum();
        let bits_written = total_bits / 2;
        let cycles = rows_written
            * (self.config.mtj.write_latency.as_ns() / self.config.tech.cycle_ns()).ceil() as u64;
        let latency = Latency::from_ns(rows_written as f64 * self.config.mtj.write_latency.as_ns());
        let mut energy = self.peripheral_leakage(latency);
        energy.add_write(self.config.mtj.write_energy * bits_written as f64);
        // Retry pulses pay full set/reset energy each.
        energy.add_write(self.config.mtj.write_energy * retried_bits as f64);
        // Row/col decoders and drivers are active for the whole write.
        energy.add_write(
            (self.config.components.row_decoder_driver.power()
                + self.config.components.col_decoder_driver.power())
                * latency,
        );

        let report = LoadReport {
            cycles,
            latency,
            energy,
            bits_written,
            retried_bits,
            faulted_bits,
        };
        self.stats.record_load(&report);
        Ok(report)
    }

    fn matvec(&mut self, x: &[i8]) -> Result<MatvecReport, PeError> {
        let tile = self.tile.as_ref().ok_or(PeError::NotLoaded)?;
        let mut outputs = vec![0i32; tile.cols];
        let cost = self.matvec_into(x, &mut outputs)?;
        Ok(MatvecReport {
            outputs,
            cycles: cost.cycles,
            latency: cost.latency,
            energy: cost.energy,
        })
    }

    fn matvec_into(&mut self, x: &[i8], y: &mut [i32]) -> Result<MatvecCost, PeError> {
        let tile = self.tile.as_ref().ok_or(PeError::NotLoaded)?;
        if x.len() != tile.rows {
            return Err(PeError::InputLength {
                expected: tile.rows,
                actual: x.len(),
            });
        }
        assert_eq!(
            y.len(),
            tile.cols,
            "output buffer does not match the tile's column count"
        );
        let occupied = tile.occupied_slots;
        // Compiled execution kernel: exact row-stream arithmetic as a
        // single-pass gather, or bit-plane popcount where selected at
        // load time (see `kernel.rs` for both equivalences).
        match &self.packed {
            Some(p) => p.matvec_into(x, y),
            None => self.kernel.matvec_into(x, y),
        }
        // Analytic accounting model, precomputed at load time.
        let cost = self.cost;
        self.stats.record_matvec_cost(&cost, occupied);
        Ok(cost)
    }

    fn matvec_batch(
        &mut self,
        xs: &[i8],
        batch: usize,
        y: &mut [i32],
    ) -> Result<MatvecCost, PeError> {
        assert!(batch > 0, "batch must be non-empty");
        let tile = self.tile.as_ref().ok_or(PeError::NotLoaded)?;
        if xs.len() != batch * tile.rows {
            return Err(PeError::InputLength {
                expected: batch * tile.rows,
                actual: xs.len(),
            });
        }
        assert_eq!(
            y.len(),
            batch * tile.cols,
            "output buffer does not match batch × column count"
        );
        let occupied = tile.occupied_slots;
        match &self.packed {
            Some(p) => p.matmul_into(xs, batch, y),
            None => self.kernel.matmul_into(xs, batch, y),
        }
        let cost = self.cost;
        for _ in 0..batch {
            self.stats.record_matvec_cost(&cost, occupied);
        }
        Ok(cost)
    }

    fn stats(&self) -> &PeStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = PeStats::new();
    }

    fn capacity_slots(&self) -> usize {
        self.config.capacity_slots()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_sparse::prune::prune_magnitude;
    use pim_sparse::{Matrix, NmPattern};

    fn sparse_tile(rows: usize, cols: usize, pattern: NmPattern, seed: usize) -> CscMatrix {
        let dense = Matrix::from_fn(rows, cols, |r, c| {
            (((r * 29 + c * 13 + seed * 11) % 251) as i32 - 125) as i8
        });
        let mask = prune_magnitude(&dense, pattern).expect("non-empty");
        CscMatrix::compress(&dense, &mask).expect("shapes match")
    }

    #[test]
    fn matvec_is_bit_exact_vs_reference() {
        for (pattern, seed) in [
            (NmPattern::one_of_four(), 1),
            (NmPattern::one_of_eight(), 2),
            (NmPattern::two_of_four(), 3),
        ] {
            let csc = sparse_tile(256, 16, pattern, seed);
            let mut pe = MramSparsePe::new();
            pe.load(&csc).unwrap();
            let x: Vec<i8> = (0..256).map(|i| ((i * 7 + seed) % 200) as i8).collect();
            let report = pe.matvec(&x).unwrap();
            let wide: Vec<i32> = x.iter().map(|&v| v as i32).collect();
            assert_eq!(report.outputs, csc.matvec(&wide).unwrap(), "{pattern}");
        }
    }

    #[test]
    fn pipeline_cycles_track_rows_used() {
        let csc = sparse_tile(672, 4, NmPattern::one_of_four(), 5);
        // 672 rows 1:4 → 168 slots per column → 4 rows of 42 per column.
        let mut pe = MramSparsePe::new();
        pe.load(&csc).unwrap();
        assert_eq!(pe.rows_used(), 16);
        let report = pe.matvec(&[1i8; 672]).unwrap();
        assert_eq!(report.cycles, 16 + 3);
    }

    #[test]
    fn capacity_is_enforced() {
        // 1:4 over 43008 logical rows: 10752 slots per column → 256 rows
        // per column; 5 columns exceed the 1024-row array.
        let dense = Matrix::from_fn(43_008, 5, |r, _| if r % 4 == 0 { 1i8 } else { 0 });
        let csc = CscMatrix::compress_auto(&dense, NmPattern::one_of_four()).unwrap();
        let mut pe = MramSparsePe::new();
        assert!(matches!(
            pe.load(&csc),
            Err(PeError::CapacityExceeded { .. })
        ));
    }

    #[test]
    fn write_is_orders_of_magnitude_costlier_than_read() {
        let csc = sparse_tile(256, 8, NmPattern::one_of_four(), 2);
        let mut pe = MramSparsePe::new();
        let load = pe.load(&csc).unwrap();
        let mv = pe.matvec(&[1i8; 256]).unwrap();
        // The load (write) must dwarf a single matvec's read energy.
        assert!(
            load.energy.write.as_pj() > 5.0 * mv.energy.read.as_pj(),
            "write {} vs read {}",
            load.energy.write,
            mv.energy.read
        );
        // And the write latency uses the 10 ns MTJ pulse, not the 1 ns clock.
        assert!(load.latency.as_ns() >= 10.0 * pe.rows_used() as f64);
    }

    #[test]
    fn inference_energy_has_no_write_channel() {
        let csc = sparse_tile(128, 4, NmPattern::one_of_eight(), 4);
        let mut pe = MramSparsePe::new();
        pe.load(&csc).unwrap();
        let r = pe.matvec(&[5i8; 128]).unwrap();
        assert!(r.energy.write.is_zero());
        assert!(r.energy.read.as_pj() > 0.0);
        assert!(r.energy.compute.as_pj() > 0.0);
    }

    #[test]
    fn mram_leakage_is_negligible_vs_sram() {
        use crate::sram::SramSparsePe;
        use crate::SparsePe as _;
        let csc = sparse_tile(64, 4, NmPattern::one_of_four(), 6);
        let mut mram = MramSparsePe::new();
        mram.load(&csc).unwrap();
        let rm = mram.matvec(&[1i8; 64]).unwrap();
        let mut sram = SramSparsePe::new();
        sram.load(&csc).unwrap();
        let rs = sram.matvec(&[1i8; 64]).unwrap();
        // Leakage per nanosecond of activity: MRAM ≪ SRAM.
        let mram_leak_rate = rm.energy.leakage.as_pj() / rm.latency.as_ns();
        let sram_leak_rate = rs.energy.leakage.as_pj() / rs.latency.as_ns();
        assert!(
            mram_leak_rate < 0.25 * sram_leak_rate,
            "mram {mram_leak_rate} vs sram {sram_leak_rate}"
        );
    }

    #[test]
    fn not_loaded_and_length_errors() {
        let mut pe = MramSparsePe::new();
        assert_eq!(pe.matvec(&[0i8; 4]), Err(PeError::NotLoaded));
        let csc = sparse_tile(64, 4, NmPattern::one_of_four(), 7);
        pe.load(&csc).unwrap();
        assert!(pe.matvec(&[0i8; 63]).is_err());
    }

    #[test]
    fn capacity_matches_paper_geometry() {
        let pe = MramSparsePe::new();
        assert_eq!(pe.capacity_slots(), 1024 * 42);
        assert_eq!(pe.config().capacity_bits(), 1024 * 512);
    }

    #[test]
    fn fault_free_channel_changes_nothing() {
        let csc = sparse_tile(128, 4, NmPattern::one_of_four(), 1);
        let mut clean = MramSparsePe::new();
        clean.load(&csc).unwrap();
        let mut faulty = MramSparsePe::new();
        let report = faulty.load_with_faults(&csc, 42, 3).unwrap();
        assert_eq!(report.corrupted_bits, 0);
        assert_eq!(report.retried_bits, 0);
        let x = vec![3i8; 128];
        assert_eq!(
            clean.matvec(&x).unwrap().outputs,
            faulty.matvec(&x).unwrap().outputs
        );
    }

    #[test]
    fn write_verify_retries_suppress_most_faults() {
        let mut cfg = MramPeConfig::dac24();
        cfg.mtj.write_error_rate = 0.05;
        let csc = sparse_tile(512, 8, NmPattern::one_of_four(), 2);

        // No retries: ~5% of written bits corrupt.
        let mut raw = MramSparsePe::with_config(cfg.clone());
        let no_retry = raw.load_with_faults(&csc, 7, 0).unwrap();
        assert!(no_retry.corrupted_bits > 0);

        // Three verify-retries: corruption collapses by ~p³.
        let mut verified = MramSparsePe::with_config(cfg);
        let with_retry = verified.load_with_faults(&csc, 7, 3).unwrap();
        assert!(with_retry.retried_bits > 0);
        assert!(
            with_retry.corrupted_bits * 100 < no_retry.corrupted_bits.max(1),
            "retry {} vs raw {}",
            with_retry.corrupted_bits,
            no_retry.corrupted_bits
        );
        // Retries cost extra write energy.
        assert!(with_retry.load.energy.write > no_retry.load.energy.write);
    }

    #[test]
    fn corrupted_weights_flow_into_matvec_results() {
        let mut cfg = MramPeConfig::dac24();
        cfg.mtj.write_error_rate = 0.2; // pathological corner
        let csc = sparse_tile(256, 8, NmPattern::one_of_four(), 3);
        let mut clean = MramSparsePe::new();
        clean.load(&csc).unwrap();
        let mut faulty = MramSparsePe::with_config(cfg);
        let report = faulty.load_with_faults(&csc, 11, 0).unwrap();
        assert!(report.corrupted_bits > 10);
        let x = vec![1i8; 256];
        assert_ne!(
            clean.matvec(&x).unwrap().outputs,
            faulty.matvec(&x).unwrap().outputs,
            "bit flips must perturb the computation"
        );
    }

    #[test]
    fn fault_injection_is_deterministic_per_seed() {
        let mut cfg = MramPeConfig::dac24();
        cfg.mtj.write_error_rate = 0.1;
        let csc = sparse_tile(256, 8, NmPattern::one_of_four(), 4);
        let mut a = MramSparsePe::with_config(cfg.clone());
        let ra = a.load_with_faults(&csc, 99, 1).unwrap();
        let mut b = MramSparsePe::with_config(cfg);
        let rb = b.load_with_faults(&csc, 99, 1).unwrap();
        assert_eq!(ra.corrupted_bits, rb.corrupted_bits);
        let x = vec![2i8; 256];
        assert_eq!(a.matvec(&x).unwrap().outputs, b.matvec(&x).unwrap().outputs);
    }

    #[test]
    fn stochastic_config_flag_surfaces_counters_in_stats() {
        let mut cfg = MramPeConfig::dac24();
        cfg.mtj.write_error_rate = 0.1;
        cfg.stochastic = Some(StochasticWrites {
            seed: 5,
            max_retries: 2,
        });
        let csc = sparse_tile(256, 8, NmPattern::one_of_four(), 6);
        let mut pe = MramSparsePe::with_config(cfg);
        let report = pe.load(&csc).unwrap();
        assert!(report.retried_bits > 0);
        assert_eq!(pe.stats().write_retries, report.retried_bits);
        assert_eq!(pe.stats().write_faults, report.faulted_bits);
        assert_eq!(pe.stats().write_bits, report.bits_written);

        // The same load through the wrapper is identical.
        let mut cfg2 = MramPeConfig::dac24();
        cfg2.mtj.write_error_rate = 0.1;
        let mut other = MramSparsePe::with_config(cfg2);
        let wrapped = other.load_with_faults(&csc, 5, 2).unwrap();
        assert_eq!(wrapped.load, report);
        let x = vec![2i8; 256];
        assert_eq!(
            pe.matvec(&x).unwrap().outputs,
            other.matvec(&x).unwrap().outputs
        );
    }

    /// The pre-decoupling step-wise row stream, kept verbatim as the
    /// oracle for the compiled kernel.
    fn step_wise_walk(pe: &MramSparsePe, x: &[i8]) -> Vec<i32> {
        let tile = pe.tile.as_ref().expect("loaded");
        let m = tile.m;
        let mut acc = vec![0i64; tile.cols];
        for row in &pe.rows {
            let mut row_sum = 0i64;
            for &(group, slot) in &row.pairs {
                if !slot.occupied {
                    continue;
                }
                let logical_row = group * m + slot.offset as usize;
                row_sum += slot.value as i64 * x[logical_row] as i64;
            }
            acc[row.logical_col] += row_sum;
        }
        acc.into_iter().map(|v| v as i32).collect()
    }

    /// The pre-decoupling per-call accounting, kept verbatim as the oracle
    /// for the precomputed [`MatvecCost`] — same expressions, same f64
    /// operation order.
    fn step_wise_cost(pe: &MramSparsePe) -> MatvecCost {
        let cycles = pe.rows.len() as u64 + 3;
        let latency = Latency::from_cycles(cycles, pe.config.tech.clock_mhz());
        let comp = &pe.config.components;
        let mut energy = pe.peripheral_leakage(latency);
        let pair_bits = (pe.config.weight_bits + pe.config.index_bits) as u64;
        let bits_read: u64 = pe
            .rows
            .iter()
            .map(|r| r.pairs.len() as u64 * pair_bits)
            .sum();
        energy.add_read(pe.config.mtj.read_energy * bits_read as f64);
        energy.add_read(
            (comp.row_decoder_driver.power() + comp.col_decoder_driver.power()) * latency,
        );
        energy.add_compute((comp.parallel_shift_acc.power() + comp.adder_tree.power()) * latency);
        MatvecCost {
            cycles,
            latency,
            energy,
        }
    }

    #[test]
    fn flat_kernel_matches_step_wise_walk_and_cost() {
        for (rows, pattern, seed) in [
            (256usize, NmPattern::one_of_four(), 1usize),
            (250, NmPattern::one_of_four(), 2), // partial tail group
            (256, NmPattern::one_of_eight(), 3),
            (205, NmPattern::one_of_eight(), 4), // partial tail group
        ] {
            let csc = sparse_tile(rows, 8, pattern, seed);
            let mut pe = MramSparsePe::new();
            pe.load(&csc).unwrap();
            let x: Vec<i8> = (0..rows)
                .map(|i| match i % 5 {
                    0 => i8::MIN,
                    1 => i8::MAX,
                    k => ((i * 23 + k) % 256) as u8 as i8,
                })
                .collect();
            let report = pe.matvec(&x).unwrap();
            assert_eq!(report.outputs, step_wise_walk(&pe, &x), "{pattern}");
            let oracle = step_wise_cost(&pe);
            assert_eq!(report.cycles, oracle.cycles);
            assert_eq!(report.latency, oracle.latency);
            assert_eq!(report.energy, oracle.energy, "bit-exact energy buckets");
        }
    }

    #[test]
    fn matvec_into_and_batch_match_matvec_and_stats() {
        let csc = sparse_tile(128, 8, NmPattern::one_of_four(), 5);
        let mut a = MramSparsePe::new();
        a.load(&csc).unwrap();
        let mut b = MramSparsePe::new();
        b.load(&csc).unwrap();

        let xs: Vec<i8> = (0..4 * 128)
            .map(|i| ((i * 37 + 11) % 256) as u8 as i8)
            .collect();
        let mut seq = Vec::new();
        for chunk in xs.chunks(128) {
            seq.extend_from_slice(&a.matvec(chunk).unwrap().outputs);
        }
        let mut y = vec![0i32; 4 * 8];
        b.matvec_batch(&xs, 4, &mut y).unwrap();
        assert_eq!(y, seq);
        assert_eq!(a.stats(), b.stats(), "ledgers agree bit-exactly");
        assert_eq!(b.stats().matvecs, 4);
    }

    #[test]
    fn faulted_load_compiles_the_corrupted_weights() {
        let mut cfg = MramPeConfig::dac24();
        cfg.mtj.write_error_rate = 0.2;
        let csc = sparse_tile(256, 8, NmPattern::one_of_four(), 9);
        let mut pe = MramSparsePe::with_config(cfg);
        let report = pe.load_with_faults(&csc, 17, 0).unwrap();
        assert!(report.corrupted_bits > 0);
        let x = vec![1i8; 256];
        // The compiled kernel must execute the stored (faulted) program —
        // identical to the step-wise walk over the corrupted rows.
        let r = pe.matvec(&x).unwrap();
        assert_eq!(r.outputs, step_wise_walk(&pe, &x));
    }

    #[test]
    fn stats_accumulate() {
        let csc = sparse_tile(128, 8, NmPattern::one_of_four(), 8);
        let mut pe = MramSparsePe::new();
        pe.load(&csc).unwrap();
        for _ in 0..3 {
            pe.matvec(&[2i8; 128]).unwrap();
        }
        assert_eq!(pe.stats().loads, 1);
        assert_eq!(pe.stats().matvecs, 3);
        assert!(pe.stats().energy.write.as_pj() > 0.0);
    }
}
