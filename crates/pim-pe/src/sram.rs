//! The fully-digital bit-serial SRAM sparse PE (paper Fig. 3).
//!
//! Geometry: a 128×96 array per PE — each of the 128 rows holds eight
//! 12-bit weight/index pairs (8-bit INT8 weight in 8T compute cells, 4-bit
//! CSC index in 6T cells), organized as eight **column groups** of 128×12.
//! Each column group owns an index generator, 128 comparators, and a
//! 128-input 8-bit adder tree; all groups share a shift accumulator (for
//! bit-serial input precision compensation) and a row-wise accumulator
//! (for logical columns whose compressed slots spill across groups).
//!
//! ## Cycle model
//!
//! The three steps of §3.1 are pipelined per cycle:
//!
//! 1. activations are applied bit-serially on the shared input word lines
//!    (8 bit planes for INT8);
//! 2. per bit plane, the index generators sweep the `M` offsets of the
//!    current N:M pattern — in phase `j` the IWLs broadcast the activations
//!    at offset `j` of every group and the comparators enable exactly the
//!    rows whose stored 4-bit index equals `j`;
//! 3. matched partial products enter the adder trees, the shift
//!    accumulator weights the plane by `2^bit` (negatively for the sign
//!    plane), and the row-wise accumulator merges group segments of the
//!    same logical column.
//!
//! One matvec over a loaded tile therefore takes `8 × M + 3` cycles
//! (3 = pipeline fill + output drain). Because a tile covers `128·M/N`
//! logical reduction rows per column instead of 128, the PE's logical
//! throughput exceeds a dense array of the same geometry by `M/N` — the
//! paper's sparse-processing speedup.
//!
//! ## Energy model
//!
//! Dynamic energy is `component power × active time` using the Table 2
//! powers (`decoder + bit cells + index decoder` → the *read* channel,
//! `shift acc + adder + ReLU` → the *compute* channel); array leakage is
//! `per-bit leakage × 12,288 cells × elapsed`; weight loads pay per-cell
//! SRAM write energy (fast and cheap — the reason learnable weights live
//! here).

use crate::error::PeError;
use crate::kernel::{FlatKernel, PackedKernel};
use crate::stats::{LoadReport, MatvecCost, MatvecReport, PeStats};
use crate::SparsePe;
use pim_device::components::SramPeComponents;
use pim_device::sram_cell::{SramCell, SramCellKind};
use pim_device::units::Latency;
use pim_device::{EnergyLedger, TechnologyParams};
use pim_sparse::csc::CscSlot;
use pim_sparse::CscMatrix;

/// Geometry and technology of an SRAM sparse PE.
#[derive(Debug, Clone, PartialEq)]
pub struct SramPeConfig {
    /// Array rows (compressed slots per column group).
    pub rows: usize,
    /// Number of column groups (parallel logical-column segments).
    pub column_groups: usize,
    /// Weight resolution in bits.
    pub weight_bits: u32,
    /// Hardware index field width in bits.
    pub index_bits: u32,
    /// Technology point.
    pub tech: TechnologyParams,
    /// Component area/power library.
    pub components: SramPeComponents,
}

impl SramPeConfig {
    /// The paper's 128×96 PE at 28 nm.
    pub fn dac24() -> Self {
        Self {
            rows: 128,
            column_groups: 8,
            weight_bits: 8,
            index_bits: 4,
            tech: TechnologyParams::tsmc28(),
            components: SramPeComponents::dac24(),
        }
    }

    /// Total bit-cells in the array (weight + index sections).
    pub fn total_cells(&self) -> u64 {
        (self.rows * self.column_groups) as u64 * (self.weight_bits + self.index_bits) as u64
    }

    /// Compressed slots the array holds.
    pub fn capacity_slots(&self) -> usize {
        self.rows * self.column_groups
    }
}

impl Default for SramPeConfig {
    fn default() -> Self {
        Self::dac24()
    }
}

/// One column-group segment of a logical column.
#[derive(Debug, Clone)]
struct Segment {
    logical_col: usize,
    /// Slots stored in this group, each with its logical group index so the
    /// comparator phase can locate the activation.
    slots: Vec<(usize, CscSlot)>, // (logical_group, slot)
}

/// Bit-level difference between the resident segments and a candidate
/// packing of the same layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct SegmentDelta {
    /// Weight (8T compute-cell) bits that would toggle.
    weight_bits: u64,
    /// Index (6T cell) bits that would toggle.
    index_bits: u64,
    /// Physical rows holding at least one toggled bit (one write cycle
    /// each).
    dirty_rows: u64,
}

/// The SRAM sparse PE simulator. See the module-level documentation for the
/// cycle and energy models.
///
/// Cloning a loaded PE duplicates its tile program and statistics — the
/// serving runtime uses this to replicate compiled tiles across workers.
#[derive(Debug, Clone)]
pub struct SramSparsePe {
    config: SramPeConfig,
    segments: Vec<Segment>,
    tile: Option<TileInfo>,
    /// Flat occupied-only execution kernel, compiled at load/update time
    /// from `segments`; empty until a tile is resident.
    kernel: FlatKernel,
    /// Bit-plane popcount kernel, built at load/update time when the
    /// resident tile is dense/low-bit enough to beat the flat gather
    /// (see [`PackedKernel::pack_if_profitable`]); `None` keeps the flat
    /// path. Both compute the same exact integer sums, so which one runs
    /// never changes an output bit.
    packed: Option<PackedKernel>,
    /// Analytic per-matvec cost of the resident tile, precomputed at
    /// load/update time (the cycle/energy model is data-independent).
    cost: MatvecCost,
    stats: PeStats,
}

#[derive(Debug, Clone)]
struct TileInfo {
    rows: usize,
    cols: usize,
    m: usize,
    occupied_slots: u64,
}

impl SramSparsePe {
    /// Creates a PE with the paper's default configuration.
    pub fn new() -> Self {
        Self::with_config(SramPeConfig::dac24())
    }

    /// Creates a PE with an explicit configuration.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero rows or groups).
    pub fn with_config(config: SramPeConfig) -> Self {
        assert!(
            config.rows > 0 && config.column_groups > 0,
            "degenerate PE geometry"
        );
        Self {
            config,
            segments: Vec::new(),
            tile: None,
            kernel: FlatKernel::default(),
            packed: None,
            cost: MatvecCost::default(),
            stats: PeStats::new(),
        }
    }

    /// The PE configuration.
    pub fn config(&self) -> &SramPeConfig {
        &self.config
    }

    /// Number of column groups currently occupied.
    pub fn groups_used(&self) -> usize {
        self.segments.len()
    }

    fn cell(&self, kind: SramCellKind) -> SramCell {
        SramCell::new(kind, &self.config.tech)
    }

    /// Validates `weights` against the geometry and packs it into
    /// column-group segments without touching the resident program.
    fn pack_segments(&self, weights: &CscMatrix) -> Result<(Vec<Segment>, TileInfo), PeError> {
        let pattern = weights.pattern();
        if pattern.index_bits() > self.config.index_bits {
            return Err(PeError::PatternUnsupported {
                needed_bits: pattern.index_bits(),
                hardware_bits: self.config.index_bits,
            });
        }
        // Each logical column occupies ceil(slots / rows) groups.
        let slots_per_col = weights.slots_per_col();
        let groups_per_col = slots_per_col.div_ceil(self.config.rows).max(1);
        let groups_needed = groups_per_col * weights.cols();
        if groups_needed > self.config.column_groups {
            return Err(PeError::CapacityExceeded {
                required: groups_needed * self.config.rows,
                available: self.config.capacity_slots(),
            });
        }

        let n = pattern.n();
        let mut segments = Vec::with_capacity(groups_needed);
        let mut occupied = 0u64;
        for c in 0..weights.cols() {
            let col_slots = weights.column_slots(c);
            for (chunk_idx, chunk) in col_slots.chunks(self.config.rows).enumerate() {
                let base_slot = chunk_idx * self.config.rows;
                let slots: Vec<(usize, CscSlot)> = chunk
                    .iter()
                    .enumerate()
                    .map(|(i, &s)| ((base_slot + i) / n, s))
                    .collect();
                occupied += slots.iter().filter(|(_, s)| s.occupied).count() as u64;
                segments.push(Segment {
                    logical_col: c,
                    slots,
                });
            }
        }
        let tile = TileInfo {
            rows: weights.rows(),
            cols: weights.cols(),
            m: pattern.m(),
            occupied_slots: occupied,
        };
        Ok((segments, tile))
    }

    /// Differentially rewrites the resident tile with `weights`, toggling
    /// only the bit-cells whose stored value changes.
    ///
    /// This is the on-device learning write path: successive Rep-Net
    /// updates move few INT8 codes, so only the dirty physical rows are
    /// re-driven (one cycle each) and only the flipped weight/index bits
    /// pay SRAM cell write energy. The resulting program is identical to a
    /// fresh [`load`](SparsePe::load) of the same matrix — bit-exact
    /// matvecs — but the write energy is bounded above by the full load's.
    ///
    /// Falls back to a full [`load`](SparsePe::load) when no tile is
    /// resident or when `weights` has a different segment layout (shape or
    /// pattern change).
    pub fn update(&mut self, weights: &CscMatrix) -> Result<LoadReport, PeError> {
        let (segments, tile) = self.pack_segments(weights)?;
        if !self.layout_matches(&segments) {
            return self.load(weights);
        }

        let delta = self.segment_delta(&segments);
        let weight_bits_changed = delta.weight_bits;
        let index_bits_changed = delta.index_bits;

        // Only dirty physical rows are re-driven, one per cycle; an
        // unchanged tile is free.
        let cycles = delta.dirty_rows;
        let latency = Latency::from_cycles(cycles, self.config.tech.clock_mhz());
        let bits_written = weight_bits_changed + index_bits_changed;
        let mut energy = self.leakage_over(latency);
        let w_cell = self.cell(SramCellKind::Compute8T);
        let i_cell = self.cell(SramCellKind::Index6T);
        energy.add_write(
            w_cell.write_energy() * weight_bits_changed as f64
                + i_cell.write_energy() * index_bits_changed as f64,
        );
        energy.add_read(self.config.components.decoder.power() * latency);

        self.segments = segments;
        self.tile = Some(tile);
        self.recompile();
        let report = LoadReport {
            cycles,
            latency,
            energy,
            bits_written,
            retried_bits: 0,
            faulted_bits: 0,
        };
        self.stats.record_load(&report);
        Ok(report)
    }

    /// Whether `segments` has the same shape as the resident program
    /// (same segment count, logical columns, and slots per segment), i.e.
    /// whether [`update`](Self::update) can rewrite it differentially.
    fn layout_matches(&self, segments: &[Segment]) -> bool {
        self.tile.is_some()
            && self.segments.len() == segments.len()
            && self
                .segments
                .iter()
                .zip(segments)
                .all(|(a, b)| a.logical_col == b.logical_col && a.slots.len() == b.slots.len())
    }

    /// Counts the bit toggles a differential rewrite to `segments` would
    /// perform. Requires [`layout_matches`](Self::layout_matches).
    fn segment_delta(&self, segments: &[Segment]) -> SegmentDelta {
        // Stored image of a slot: 8-bit weight in the compute cells, 4-bit
        // CSC offset in the index cells; empty slots are zero-filled.
        let stored = |&(_, s): &(usize, CscSlot)| -> (u8, u8) {
            if s.occupied {
                (s.value as u8, s.offset & 0x0F)
            } else {
                (0, 0)
            }
        };
        let mut delta = SegmentDelta {
            weight_bits: 0,
            index_bits: 0,
            dirty_rows: 0,
        };
        let mut dirty_rows = vec![false; self.config.rows];
        for (old_seg, new_seg) in self.segments.iter().zip(segments) {
            for (row, (old, new)) in old_seg.slots.iter().zip(&new_seg.slots).enumerate() {
                let (ow, oi) = stored(old);
                let (nw, ni) = stored(new);
                let dw = (ow ^ nw).count_ones() as u64;
                let di = (oi ^ ni).count_ones() as u64;
                if dw + di > 0 {
                    dirty_rows[row] = true;
                }
                delta.weight_bits += dw;
                delta.index_bits += di;
            }
        }
        delta.dirty_rows = dirty_rows.iter().filter(|&&d| d).count() as u64;
        delta
    }

    /// The exact number of bits an [`update`](Self::update) to `weights`
    /// would write, **without writing anything**: the bit-exact XOR count
    /// when the layout matches, or the full-load bill (`slots ×
    /// (weight_bits + index_bits)`) when the update would fall back to a
    /// fresh load.
    ///
    /// This is the write-back preflight used by the learning engine: the
    /// sum over tiles is order-independent (u64 addition), so the diff can
    /// be computed tile-parallel and still authorize against the exact
    /// figure the sequential rewrite will bill.
    ///
    /// # Errors
    ///
    /// Same validation as [`update`](Self::update): pattern or capacity
    /// violations.
    pub fn diff_bits(&self, weights: &CscMatrix) -> Result<u64, PeError> {
        let (segments, _) = self.pack_segments(weights)?;
        if !self.layout_matches(&segments) {
            let total_slots: u64 = segments.iter().map(|s| s.slots.len() as u64).sum();
            return Ok(total_slots * (self.config.weight_bits + self.config.index_bits) as u64);
        }
        let delta = self.segment_delta(&segments);
        Ok(delta.weight_bits + delta.index_bits)
    }

    /// The compute half of [`matvec_batch`](SparsePe::matvec_batch):
    /// identical validation and identical kernel arithmetic, but `&self`
    /// and **no ledger recording** — parallel tasks can fan a batch out
    /// over disjoint sub-ranges of one tile, then the dispatcher folds the
    /// accounting in deterministic order with
    /// [`record_matvecs`](Self::record_matvecs).
    ///
    /// # Errors
    ///
    /// [`PeError::NotLoaded`] with no resident tile,
    /// [`PeError::InputLength`] on a length mismatch.
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero or `y` is not `batch × cols`.
    pub fn matvec_batch_compute(
        &self,
        xs: &[i8],
        batch: usize,
        y: &mut [i32],
    ) -> Result<(), PeError> {
        assert!(batch > 0, "batch must be non-empty");
        let tile = self.tile.as_ref().ok_or(PeError::NotLoaded)?;
        if xs.len() != batch * tile.rows {
            return Err(PeError::InputLength {
                expected: batch * tile.rows,
                actual: xs.len(),
            });
        }
        assert_eq!(
            y.len(),
            batch * tile.cols,
            "output buffer does not match batch × column count"
        );
        match &self.packed {
            Some(p) => p.matmul_into(xs, batch, y),
            None => self.kernel.matmul_into(xs, batch, y),
        }
        Ok(())
    }

    /// Which compiled kernel serves the resident tile: `"packed"` when the
    /// bit-plane popcount path was selected at load time, `"flat"`
    /// otherwise. Diagnostic/bench hook — both backends are bit-identical.
    pub fn kernel_backend(&self) -> &'static str {
        if self.packed.is_some() {
            "packed"
        } else {
            "flat"
        }
    }

    /// Bench/test hook: re-runs packed-kernel selection (`true`) or forces
    /// the flat gather path (`false`). Outputs are bit-identical either
    /// way; only throughput changes.
    pub fn set_packed_enabled(&mut self, enabled: bool) {
        self.packed = if enabled && self.tile.is_some() {
            PackedKernel::pack_if_profitable(&self.kernel)
        } else {
            None
        };
    }

    /// The accounting half of [`matvec_batch`](SparsePe::matvec_batch):
    /// folds `count` matvecs of the resident tile into the PE ledger, in
    /// the same sequential order (and therefore the same f64 bit patterns)
    /// the fused call would have used, and returns the per-matvec cost.
    ///
    /// # Errors
    ///
    /// [`PeError::NotLoaded`] with no resident tile.
    pub fn record_matvecs(&mut self, count: usize) -> Result<MatvecCost, PeError> {
        let tile = self.tile.as_ref().ok_or(PeError::NotLoaded)?;
        let occupied = tile.occupied_slots;
        let cost = self.cost;
        for _ in 0..count {
            self.stats.record_matvec_cost(&cost, occupied);
        }
        Ok(cost)
    }

    /// Recompiles the flat execution kernel and the analytic per-matvec
    /// cost from the freshly-installed segments — called by every
    /// load/update, so `matvec` is a branch-free single-pass gather.
    fn recompile(&mut self) {
        let tile = self.tile.as_ref().expect("tile installed before recompile");
        let m = tile.m;
        self.kernel.recompile(
            tile.rows,
            tile.cols,
            self.segments.iter().flat_map(|seg| {
                seg.slots
                    .iter()
                    .filter(|(_, s)| s.occupied)
                    .map(move |&(group, s)| {
                        (seg.logical_col, group * m + s.offset as usize, s.value)
                    })
            }),
        );
        debug_assert_eq!(self.kernel.cols(), tile.cols);
        debug_assert_eq!(self.kernel.nnz() as u64, tile.occupied_slots);
        // Per-tile kernel selection: dense/low-bit tiles get the bit-plane
        // popcount path, everything else keeps the flat gather.
        self.packed = PackedKernel::pack_if_profitable(&self.kernel);
        self.cost = self.analytic_matvec_cost(tile.rows, tile.m);
    }

    /// The closed-form per-matvec bill of §3.1's pipelined walk —
    /// `weight_bits × M + 3` cycles with read/compute channel powers active
    /// throughout plus the activation buffer traffic. Depends only on the
    /// tile shape and configuration, never on the activations, which is
    /// why it can be precomputed at load time.
    fn analytic_matvec_cost(&self, tile_rows: usize, m: usize) -> MatvecCost {
        let cycles = self.config.weight_bits as u64 * m as u64 + 3;
        let latency = Latency::from_cycles(cycles, self.config.tech.clock_mhz());
        let comp = &self.config.components;
        let mut energy = self.leakage_over(latency);
        let read_power = comp.decoder.power() + comp.bit_cell.power() + comp.index_decoder.power();
        energy.add_read(read_power * latency);
        let compute_power = comp.shift_acc.power() + comp.adder.power() + comp.global_relu.power();
        energy.add_compute(compute_power * latency);
        // Activation traffic through the global buffer.
        let buffer_bits = (tile_rows as u64) * self.config.weight_bits as u64;
        energy.add_read(comp.buffer_energy_per_bit * buffer_bits as f64);
        MatvecCost {
            cycles,
            latency,
            energy,
        }
    }

    fn leakage_over(&self, elapsed: Latency) -> EnergyLedger {
        let mut e = EnergyLedger::new();
        // Weight cells (8T) and index cells (6T) leak at different rates.
        let wcells =
            (self.config.rows * self.config.column_groups) as u64 * self.config.weight_bits as u64;
        let icells =
            (self.config.rows * self.config.column_groups) as u64 * self.config.index_bits as u64;
        e.add_leakage(
            self.cell(SramCellKind::Compute8T)
                .leakage_energy(wcells, elapsed),
        );
        e.add_leakage(
            self.cell(SramCellKind::Index6T)
                .leakage_energy(icells, elapsed),
        );
        e
    }
}

impl Default for SramSparsePe {
    fn default() -> Self {
        Self::new()
    }
}

impl SparsePe for SramSparsePe {
    fn load(&mut self, weights: &CscMatrix) -> Result<LoadReport, PeError> {
        let (segments, tile) = self.pack_segments(weights)?;
        self.segments = segments;
        self.tile = Some(tile);
        self.recompile();

        // Write cost: every stored slot writes weight + index cells; the
        // array is written one physical row (across all groups) per cycle.
        let rows_touched = self
            .segments
            .iter()
            .map(|s| s.slots.len())
            .max()
            .unwrap_or(0) as u64;
        let cycles = rows_touched.max(1);
        let latency = Latency::from_cycles(cycles, self.config.tech.clock_mhz());
        let total_slots: u64 = self.segments.iter().map(|s| s.slots.len() as u64).sum();
        let bits_written = total_slots * (self.config.weight_bits + self.config.index_bits) as u64;
        let mut energy = self.leakage_over(latency);
        let w_cell = self.cell(SramCellKind::Compute8T);
        let i_cell = self.cell(SramCellKind::Index6T);
        energy.add_write(
            w_cell.write_energy() * (total_slots * self.config.weight_bits as u64) as f64
                + i_cell.write_energy() * (total_slots * self.config.index_bits as u64) as f64,
        );
        // Row decoder active during the write.
        energy.add_read(self.config.components.decoder.power() * latency);

        let report = LoadReport {
            cycles,
            latency,
            energy,
            bits_written,
            retried_bits: 0,
            faulted_bits: 0,
        };
        self.stats.record_load(&report);
        Ok(report)
    }

    fn matvec(&mut self, x: &[i8]) -> Result<MatvecReport, PeError> {
        let tile = self.tile.as_ref().ok_or(PeError::NotLoaded)?;
        let mut outputs = vec![0i32; tile.cols];
        let cost = self.matvec_into(x, &mut outputs)?;
        Ok(MatvecReport {
            outputs,
            cycles: cost.cycles,
            latency: cost.latency,
            energy: cost.energy,
        })
    }

    fn matvec_into(&mut self, x: &[i8], y: &mut [i32]) -> Result<MatvecCost, PeError> {
        let tile = self.tile.as_ref().ok_or(PeError::NotLoaded)?;
        if x.len() != tile.rows {
            return Err(PeError::InputLength {
                expected: tile.rows,
                actual: x.len(),
            });
        }
        assert_eq!(
            y.len(),
            tile.cols,
            "output buffer does not match the tile's column count"
        );
        let occupied = tile.occupied_slots;
        // Compiled execution kernel: exact bit-serial arithmetic as a
        // single-pass gather, or bit-plane popcount where that was
        // selected at load time (see `kernel.rs` for both equivalences).
        match &self.packed {
            Some(p) => p.matvec_into(x, y),
            None => self.kernel.matvec_into(x, y),
        }
        // Analytic accounting model, precomputed at load time.
        let cost = self.cost;
        self.stats.record_matvec_cost(&cost, occupied);
        Ok(cost)
    }

    fn matvec_batch(
        &mut self,
        xs: &[i8],
        batch: usize,
        y: &mut [i32],
    ) -> Result<MatvecCost, PeError> {
        assert!(batch > 0, "batch must be non-empty");
        let tile = self.tile.as_ref().ok_or(PeError::NotLoaded)?;
        if xs.len() != batch * tile.rows {
            return Err(PeError::InputLength {
                expected: batch * tile.rows,
                actual: xs.len(),
            });
        }
        assert_eq!(
            y.len(),
            batch * tile.cols,
            "output buffer does not match batch × column count"
        );
        let occupied = tile.occupied_slots;
        match &self.packed {
            Some(p) => p.matmul_into(xs, batch, y),
            None => self.kernel.matmul_into(xs, batch, y),
        }
        let cost = self.cost;
        for _ in 0..batch {
            self.stats.record_matvec_cost(&cost, occupied);
        }
        Ok(cost)
    }

    fn stats(&self) -> &PeStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = PeStats::new();
    }

    fn capacity_slots(&self) -> usize {
        self.config.capacity_slots()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_sparse::gemm::{dense_matvec, masked_dense};
    use pim_sparse::prune::prune_magnitude;
    use pim_sparse::{Matrix, NmPattern};
    use proptest::prelude::*;

    fn sparse_tile(rows: usize, cols: usize, pattern: NmPattern, seed: usize) -> CscMatrix {
        let dense = Matrix::from_fn(rows, cols, |r, c| {
            (((r * 31 + c * 17 + seed * 7) % 251) as i32 - 125) as i8
        });
        let mask = prune_magnitude(&dense, pattern).expect("non-empty");
        CscMatrix::compress(&dense, &mask).expect("shapes match")
    }

    #[test]
    fn matvec_is_bit_exact_vs_reference() {
        for (pattern, seed) in [
            (NmPattern::one_of_four(), 1),
            (NmPattern::one_of_eight(), 2),
            (NmPattern::two_of_four(), 3),
            (NmPattern::new(4, 16).unwrap(), 4),
        ] {
            let csc = sparse_tile(64, 8, pattern, seed);
            let mut pe = SramSparsePe::new();
            pe.load(&csc).unwrap();
            let x: Vec<i8> = (0..64)
                .map(|i| ((i * 37 + seed) % 256) as u8 as i8)
                .collect();
            let report = pe.matvec(&x).unwrap();
            let wide: Vec<i32> = x.iter().map(|&v| v as i32).collect();
            assert_eq!(report.outputs, csc.matvec(&wide).unwrap(), "{pattern}");
        }
    }

    #[test]
    fn matvec_equals_masked_dense() {
        let pattern = NmPattern::one_of_four();
        let dense = Matrix::from_fn(32, 4, |r, c| ((r * 13 + c * 5) % 19) as i8 - 9);
        let mask = prune_magnitude(&dense, pattern).unwrap();
        let csc = CscMatrix::compress(&dense, &mask).unwrap();
        let mut pe = SramSparsePe::new();
        pe.load(&csc).unwrap();
        let x: Vec<i8> = (0..32).map(|i| i as i8 - 16).collect();
        let wide: Vec<i32> = x.iter().map(|&v| v as i32).collect();
        assert_eq!(
            pe.matvec(&x).unwrap().outputs,
            dense_matvec(&masked_dense(&dense, &mask).unwrap(), &wide).unwrap()
        );
    }

    #[test]
    fn column_spillover_uses_row_accumulator() {
        // 1024 logical rows at 1:8 → 128 slots per column: exactly one
        // group. 2048 rows → 256 slots: two groups per column (spill).
        let csc = sparse_tile(1024, 2, NmPattern::one_of_eight(), 9);
        // 1024 rows / 8 = 128 slots per column -> 1 group each.
        let mut pe = SramSparsePe::new();
        pe.load(&csc).unwrap();
        assert_eq!(pe.groups_used(), 2);

        // Same density, longer reduction: columns must span 2 groups.
        let wide = {
            let dense = Matrix::from_fn(1536, 2, |r, c| {
                if r % 8 == (c + 1) % 8 {
                    ((r % 63) as i8) - 31
                } else {
                    0
                }
            });
            CscMatrix::compress_auto(&dense, NmPattern::one_of_eight()).unwrap()
        };
        let mut pe = SramSparsePe::new();
        pe.load(&wide).unwrap();
        assert_eq!(pe.groups_used(), 4, "two groups per spilled column");
        let x: Vec<i8> = (0..1536).map(|i| (i % 127) as i8).collect();
        let report = pe.matvec(&x).unwrap();
        let wide_x: Vec<i32> = x.iter().map(|&v| v as i32).collect();
        assert_eq!(report.outputs, wide.matvec(&wide_x).unwrap());
    }

    #[test]
    fn capacity_is_enforced() {
        // 9 columns of one group each exceeds the 8 column groups.
        let csc = sparse_tile(64, 9, NmPattern::one_of_four(), 3);
        let mut pe = SramSparsePe::new();
        assert!(matches!(
            pe.load(&csc),
            Err(PeError::CapacityExceeded { .. })
        ));
    }

    #[test]
    fn matvec_without_load_fails() {
        let mut pe = SramSparsePe::new();
        assert_eq!(pe.matvec(&[0i8; 4]), Err(PeError::NotLoaded));
    }

    #[test]
    fn input_length_is_checked() {
        let csc = sparse_tile(64, 4, NmPattern::one_of_four(), 5);
        let mut pe = SramSparsePe::new();
        pe.load(&csc).unwrap();
        assert!(matches!(
            pe.matvec(&[0i8; 10]),
            Err(PeError::InputLength {
                expected: 64,
                actual: 10
            })
        ));
    }

    #[test]
    fn cycles_scale_with_pattern_group_size() {
        let mut pe = SramSparsePe::new();
        let c4 = sparse_tile(64, 4, NmPattern::one_of_four(), 6);
        pe.load(&c4).unwrap();
        let r4 = pe.matvec(&[1i8; 64]).unwrap();
        let c8 = sparse_tile(64, 4, NmPattern::one_of_eight(), 6);
        pe.load(&c8).unwrap();
        let r8 = pe.matvec(&[1i8; 64]).unwrap();
        // 8 bits × M phases: 1:8 sweeps twice the phases of 1:4 per tile —
        // but each 1:8 tile covers twice the logical rows per slot, which
        // the arch layer exploits. Here we check the raw per-tile model.
        assert_eq!(r4.cycles, 8 * 4 + 3);
        assert_eq!(r8.cycles, 8 * 8 + 3);
    }

    #[test]
    fn energy_has_leakage_read_and_compute() {
        let csc = sparse_tile(64, 4, NmPattern::one_of_four(), 7);
        let mut pe = SramSparsePe::new();
        pe.load(&csc).unwrap();
        let r = pe.matvec(&[3i8; 64]).unwrap();
        assert!(r.energy.leakage.as_pj() > 0.0);
        assert!(r.energy.read.as_pj() > 0.0);
        assert!(r.energy.compute.as_pj() > 0.0);
        assert!(r.energy.write.is_zero(), "inference never writes");
    }

    #[test]
    fn load_energy_is_write_dominated_and_cheap() {
        let csc = sparse_tile(64, 4, NmPattern::one_of_four(), 8);
        let mut pe = SramSparsePe::new();
        let report = pe.load(&csc).unwrap();
        assert!(report.energy.write.as_pj() > 0.0);
        // SRAM weight loads are cheap relative to an MRAM write of the same
        // bits (0.048 pJ/bit): under 10% here.
        let mtj_equivalent = 0.048 * report.bits_written as f64;
        assert!(report.energy.write.as_pj() < 0.1 * mtj_equivalent);
    }

    #[test]
    fn stats_accumulate_across_operations() {
        let csc = sparse_tile(64, 4, NmPattern::one_of_four(), 2);
        let mut pe = SramSparsePe::new();
        pe.load(&csc).unwrap();
        pe.matvec(&[1i8; 64]).unwrap();
        pe.matvec(&[2i8; 64]).unwrap();
        assert_eq!(pe.stats().loads, 1);
        assert_eq!(pe.stats().matvecs, 2);
        assert!(pe.stats().macs > 0);
        pe.reset_stats();
        assert_eq!(pe.stats().matvecs, 0);
    }

    #[test]
    fn rejects_pattern_wider_than_index_field() {
        let mut cfg = SramPeConfig::dac24();
        cfg.index_bits = 2;
        let mut pe = SramSparsePe::with_config(cfg);
        let csc = sparse_tile(64, 4, NmPattern::one_of_eight(), 2);
        assert_eq!(
            pe.load(&csc),
            Err(PeError::PatternUnsupported {
                needed_bits: 3,
                hardware_bits: 2
            })
        );
    }

    #[test]
    fn update_without_resident_tile_is_a_full_load() {
        let csc = sparse_tile(64, 4, NmPattern::one_of_four(), 1);
        let mut updated = SramSparsePe::new();
        let up = updated.update(&csc).unwrap();
        let mut loaded = SramSparsePe::new();
        let full = loaded.load(&csc).unwrap();
        assert_eq!(up, full);
    }

    #[test]
    fn update_matches_cold_load_bit_exactly() {
        let a = sparse_tile(64, 4, NmPattern::one_of_four(), 1);
        let b = sparse_tile(64, 4, NmPattern::one_of_four(), 2);
        let mut pe = SramSparsePe::new();
        pe.load(&a).unwrap();
        pe.update(&b).unwrap();
        let mut fresh = SramSparsePe::new();
        fresh.load(&b).unwrap();
        let x: Vec<i8> = (0..64).map(|i| ((i * 29) % 251) as u8 as i8).collect();
        assert_eq!(
            pe.matvec(&x).unwrap().outputs,
            fresh.matvec(&x).unwrap().outputs
        );
    }

    #[test]
    fn unchanged_update_is_free() {
        let csc = sparse_tile(64, 4, NmPattern::one_of_four(), 3);
        let mut pe = SramSparsePe::new();
        pe.load(&csc).unwrap();
        let up = pe.update(&csc).unwrap();
        assert_eq!(up.bits_written, 0);
        assert_eq!(up.cycles, 0);
        assert!(up.energy.write.is_zero());
    }

    #[test]
    fn update_with_new_shape_falls_back_to_full_load() {
        let a = sparse_tile(64, 4, NmPattern::one_of_four(), 4);
        let b = sparse_tile(32, 4, NmPattern::one_of_four(), 4);
        let mut pe = SramSparsePe::new();
        pe.load(&a).unwrap();
        let up = pe.update(&b).unwrap();
        let mut fresh = SramSparsePe::new();
        let full = fresh.load(&b).unwrap();
        assert_eq!(up.bits_written, full.bits_written);
        let x: Vec<i8> = (0..32).map(|i| i as i8).collect();
        assert_eq!(
            pe.matvec(&x).unwrap().outputs,
            fresh.matvec(&x).unwrap().outputs
        );
    }

    proptest! {
        // The endurance argument for the hybrid design rests on this bound:
        // rewriting a resident tile differentially can never cost more
        // write energy (or toggle more bits) than reprogramming from
        // scratch, because the changed bits are a subset of all stored bits.
        #[test]
        fn differential_update_never_exceeds_full_rewrite(
            (rows, pattern, seed_a, seed_b) in (
                prop_oneof![Just(32usize), Just(64usize), Just(128usize)],
                prop_oneof![
                    Just(NmPattern::one_of_four()),
                    Just(NmPattern::one_of_eight()),
                    Just(NmPattern::two_of_four()),
                ],
                0usize..64,
                0usize..64,
            ),
        ) {
            let a = sparse_tile(rows, 4, pattern, seed_a);
            let b = sparse_tile(rows, 4, pattern, seed_b);
            let mut pe = SramSparsePe::new();
            pe.load(&a).unwrap();
            let up = pe.update(&b).unwrap();
            let mut fresh = SramSparsePe::new();
            let full = fresh.load(&b).unwrap();
            prop_assert!(
                up.energy.write.as_pj() <= full.energy.write.as_pj() + 1e-12,
                "differential write {} pJ > full write {} pJ",
                up.energy.write.as_pj(),
                full.energy.write.as_pj()
            );
            prop_assert!(up.bits_written <= full.bits_written);
            prop_assert!(up.cycles <= full.cycles);
            // And the rewritten program is indistinguishable from a cold load.
            let x: Vec<i8> = (0..rows).map(|i| ((i * 37 + 5) % 256) as u8 as i8).collect();
            prop_assert_eq!(
                pe.matvec(&x).unwrap().outputs,
                fresh.matvec(&x).unwrap().outputs
            );
        }
    }

    /// The pre-decoupling step-wise simulation, kept verbatim as the
    /// oracle for the compiled kernel: walk `weight_bits × segments ×
    /// slots` with the occupancy branch, exactly as `matvec` used to.
    fn step_wise_walk(pe: &SramSparsePe, x: &[i8]) -> Vec<i32> {
        let tile = pe.tile.as_ref().expect("loaded");
        let m = tile.m;
        let mut acc = vec![0i64; tile.cols];
        for bit in 0..pe.config.weight_bits {
            for segment in &pe.segments {
                let mut tree = 0i64;
                for &(group, slot) in &segment.slots {
                    if !slot.occupied {
                        continue;
                    }
                    let logical_row = group * m + slot.offset as usize;
                    let xv = x[logical_row] as u8;
                    if (xv >> bit) & 1 == 1 {
                        tree += slot.value as i64;
                    }
                }
                let weighted = tree << bit;
                if bit == pe.config.weight_bits - 1 {
                    acc[segment.logical_col] -= weighted; // sign plane
                } else {
                    acc[segment.logical_col] += weighted;
                }
            }
        }
        acc.into_iter().map(|v| v as i32).collect()
    }

    /// The pre-decoupling per-call accounting, kept verbatim as the oracle
    /// for the precomputed [`MatvecCost`]: same expressions, same f64
    /// operation order, evaluated per call instead of at load time.
    fn step_wise_cost(pe: &SramSparsePe) -> MatvecCost {
        let tile = pe.tile.as_ref().expect("loaded");
        let cycles = pe.config.weight_bits as u64 * tile.m as u64 + 3;
        let latency = Latency::from_cycles(cycles, pe.config.tech.clock_mhz());
        let comp = &pe.config.components;
        let mut energy = pe.leakage_over(latency);
        let read_power = comp.decoder.power() + comp.bit_cell.power() + comp.index_decoder.power();
        energy.add_read(read_power * latency);
        let compute_power = comp.shift_acc.power() + comp.adder.power() + comp.global_relu.power();
        energy.add_compute(compute_power * latency);
        let buffer_bits = (tile.rows as u64) * pe.config.weight_bits as u64;
        energy.add_read(comp.buffer_energy_per_bit * buffer_bits as f64);
        MatvecCost {
            cycles,
            latency,
            energy,
        }
    }

    proptest! {
        // Tentpole equivalence pin: on random tiles — 1:4 and 1:8, with
        // reduction lengths that leave partial tail groups (unoccupied
        // slots) and activations spanning the full i8 range including
        // MIN/MAX — the compiled kernel is bit-identical to BOTH retained
        // oracles: the step-wise hardware walk and pim_sparse's
        // bit-serial reference.
        #[test]
        fn flat_kernel_matches_step_wise_and_bit_serial_oracles(
            (rows, pattern) in prop_oneof![
                Just((64usize, NmPattern::one_of_four())),
                Just((61usize, NmPattern::one_of_four())), // partial tail group
                Just((64usize, NmPattern::one_of_eight())),
                Just((52usize, NmPattern::one_of_eight())), // partial tail group
            ],
            seed in 0usize..256,
            raw_x in proptest::collection::vec(any::<i8>(), 64),
        ) {
            let dense = Matrix::from_fn(rows, 4, |r, c| {
                if c == 3 {
                    0 // all-zero column: kernel columns with no contribution
                } else {
                    match (r * 31 + c * 17 + seed * 7) % 97 {
                        0 => i8::MIN,
                        1 => i8::MAX,
                        k => (k as i32 - 48) as i8,
                    }
                }
            });
            let mask = prune_magnitude(&dense, pattern).expect("non-empty");
            let csc = CscMatrix::compress(&dense, &mask).expect("shapes match");
            let mut pe = SramSparsePe::new();
            pe.load(&csc).unwrap();
            let x = &raw_x[..rows];
            let report = pe.matvec(x).unwrap();
            prop_assert_eq!(&report.outputs, &step_wise_walk(&pe, x));
            let masked = masked_dense(&dense, &mask).unwrap();
            prop_assert_eq!(
                &report.outputs,
                &pim_sparse::gemm::bit_serial_matvec(&masked, x).unwrap()
            );
        }

        // Equivalence pin #2: the packed bit-plane kernel is bit-identical
        // to the flat gather and the bit-serial oracle over random tiles,
        // occupancies (1:4, 2:4, 1:8), and batch sizes. Packing is forced
        // (not gated on profitability), so the pin also covers tiles the
        // selection heuristic would leave on the flat path.
        #[test]
        fn packed_kernel_matches_flat_and_bit_serial_oracles(
            (rows, pattern) in prop_oneof![
                Just((61usize, NmPattern::one_of_four())),  // partial tail group, < 1 word
                Just((64usize, NmPattern::one_of_four())),  // exactly one u64 word
                Just((100usize, NmPattern::two_of_four())), // denser occupancy, 2 words
                Just((128usize, NmPattern::one_of_eight())),
            ],
            batch in 1usize..=8,
            seed in 0usize..128,
            raw_x in proptest::collection::vec(any::<i8>(), 8 * 128),
        ) {
            let dense = Matrix::from_fn(rows, 4, |r, c| {
                match (r * 37 + c * 19 + seed * 13) % 101 {
                    0 => i8::MIN,
                    1 => i8::MAX,
                    k => (k as i32 - 50) as i8,
                }
            });
            let mask = prune_magnitude(&dense, pattern).expect("non-empty");
            let csc = CscMatrix::compress(&dense, &mask).expect("shapes match");
            let mut pe = SramSparsePe::new();
            pe.load(&csc).unwrap();
            let packed = PackedKernel::pack(&pe.kernel);
            let xs = &raw_x[..batch * rows];
            let mut y_flat = vec![0i32; batch * 4];
            let mut y_packed = vec![0i32; batch * 4];
            pe.kernel.matmul_into(xs, batch, &mut y_flat);
            packed.matmul_into(xs, batch, &mut y_packed);
            prop_assert_eq!(&y_packed, &y_flat);
            let masked = masked_dense(&dense, &mask).unwrap();
            for b in 0..batch {
                let x = &xs[b * rows..(b + 1) * rows];
                prop_assert_eq!(
                    &y_packed[b * 4..(b + 1) * 4],
                    &pim_sparse::gemm::bit_serial_matvec(&masked, x).unwrap()[..]
                );
            }
        }

        // Accounting pin: the load-time analytic cost equals the old
        // per-call computation exactly — same cycles and the same f64 bit
        // pattern in every energy bucket — so every stats ledger built on
        // it (PeStats, PeRunStats, EDP) is unchanged by the decoupling.
        #[test]
        fn analytic_cost_matches_step_wise_accounting(
            (rows, pattern) in prop_oneof![
                Just((64usize, NmPattern::one_of_four())),
                Just((61usize, NmPattern::one_of_four())),
                Just((64usize, NmPattern::one_of_eight())),
                Just((128usize, NmPattern::one_of_eight())),
            ],
            seed in 0usize..64,
        ) {
            let csc = sparse_tile(rows, 4, pattern, seed);
            let mut pe = SramSparsePe::new();
            pe.load(&csc).unwrap();
            let oracle = step_wise_cost(&pe);
            let x = vec![1i8; rows];
            let report = pe.matvec(&x).unwrap();
            prop_assert_eq!(report.cycles, oracle.cycles);
            prop_assert_eq!(report.latency, oracle.latency);
            // Bucket-by-bucket exact f64 equality, not approximate.
            prop_assert_eq!(report.energy.leakage.as_pj(), oracle.energy.leakage.as_pj());
            prop_assert_eq!(report.energy.read.as_pj(), oracle.energy.read.as_pj());
            prop_assert_eq!(report.energy.compute.as_pj(), oracle.energy.compute.as_pj());
            prop_assert_eq!(report.energy.write.as_pj(), oracle.energy.write.as_pj());
        }
    }

    #[test]
    fn matvec_into_and_batch_match_matvec_and_stats() {
        let csc = sparse_tile(64, 4, NmPattern::one_of_four(), 13);
        let mut a = SramSparsePe::new();
        a.load(&csc).unwrap();
        let mut b = SramSparsePe::new();
        b.load(&csc).unwrap();

        let xs: Vec<i8> = (0..3 * 64)
            .map(|i| ((i * 41 + 7) % 256) as u8 as i8)
            .collect();
        // PE `a`: three sequential allocating matvecs.
        let mut seq = Vec::new();
        let mut seq_cost = None;
        for chunk in xs.chunks(64) {
            let r = a.matvec(chunk).unwrap();
            seq_cost = Some(r.cost());
            seq.extend_from_slice(&r.outputs);
        }
        // PE `b`: one batched zero-alloc call.
        let mut y = vec![0i32; 3 * 4];
        let cost = b.matvec_batch(&xs, 3, &mut y).unwrap();
        assert_eq!(y, seq);
        assert_eq!(Some(cost), seq_cost, "per-matvec cost is identical");
        assert_eq!(a.stats(), b.stats(), "ledgers agree bit-exactly");
        assert_eq!(b.stats().matvecs, 3, "batch records every matvec");

        // And `matvec_into` alone agrees too.
        let mut single = vec![0i32; 4];
        b.matvec_into(&xs[..64], &mut single).unwrap();
        assert_eq!(single, seq[..4]);
    }

    #[test]
    fn compute_then_record_matches_fused_batch_exactly() {
        let csc = sparse_tile(64, 4, NmPattern::one_of_four(), 21);
        let mut fused = SramSparsePe::new();
        fused.load(&csc).unwrap();
        let mut split = SramSparsePe::new();
        split.load(&csc).unwrap();

        let xs: Vec<i8> = (0..4 * 64)
            .map(|i| ((i * 53 + 11) % 256) as u8 as i8)
            .collect();
        let mut y_fused = vec![0i32; 4 * 4];
        let cost_fused = fused.matvec_batch(&xs, 4, &mut y_fused).unwrap();

        // Split path computes the batch in two disjoint halves (as a
        // parallel fan-out would), then records the accounting once.
        let mut y_split = vec![0i32; 4 * 4];
        split
            .matvec_batch_compute(&xs[..2 * 64], 2, &mut y_split[..2 * 4])
            .unwrap();
        split
            .matvec_batch_compute(&xs[2 * 64..], 2, &mut y_split[2 * 4..])
            .unwrap();
        let cost_split = split.record_matvecs(4).unwrap();

        assert_eq!(y_split, y_fused, "outputs bit-identical across the split");
        assert_eq!(cost_split, cost_fused);
        assert_eq!(split.stats(), fused.stats(), "ledgers agree bit-exactly");
    }

    #[test]
    fn compute_and_record_validate_like_the_fused_call() {
        let pe = SramSparsePe::new();
        let mut y = vec![0i32; 4];
        assert_eq!(
            pe.matvec_batch_compute(&[0i8; 64], 1, &mut y),
            Err(PeError::NotLoaded)
        );
        let mut pe = pe;
        assert_eq!(pe.record_matvecs(1), Err(PeError::NotLoaded));
        let csc = sparse_tile(64, 4, NmPattern::one_of_four(), 22);
        pe.load(&csc).unwrap();
        assert!(matches!(
            pe.matvec_batch_compute(&[0i8; 10], 1, &mut y),
            Err(PeError::InputLength {
                expected: 64,
                actual: 10
            })
        ));
    }

    #[test]
    fn diff_bits_predicts_the_update_bill_exactly() {
        let a = sparse_tile(64, 4, NmPattern::one_of_four(), 31);
        let b = sparse_tile(64, 4, NmPattern::one_of_four(), 32);
        let mut pe = SramSparsePe::new();
        pe.load(&a).unwrap();
        let predicted = pe.diff_bits(&b).unwrap();
        let report = pe.update(&b).unwrap();
        assert_eq!(predicted, report.bits_written);
        assert!(predicted > 0, "distinct tiles must differ somewhere");
    }

    #[test]
    fn diff_bits_is_zero_for_an_unchanged_tile() {
        let csc = sparse_tile(64, 4, NmPattern::one_of_four(), 33);
        let mut pe = SramSparsePe::new();
        pe.load(&csc).unwrap();
        assert_eq!(pe.diff_bits(&csc).unwrap(), 0);
    }

    #[test]
    fn diff_bits_bills_a_full_load_on_layout_change() {
        let a = sparse_tile(64, 4, NmPattern::one_of_four(), 34);
        let b = sparse_tile(32, 4, NmPattern::one_of_four(), 34);
        let mut pe = SramSparsePe::new();
        pe.load(&a).unwrap();
        let predicted = pe.diff_bits(&b).unwrap();
        let report = pe.update(&b).unwrap();
        assert_eq!(predicted, report.bits_written, "fallback bill matches");
    }

    #[test]
    fn int8_extreme_inputs_are_exact() {
        let csc = sparse_tile(32, 4, NmPattern::two_of_four(), 11);
        let mut pe = SramSparsePe::new();
        pe.load(&csc).unwrap();
        let x: Vec<i8> = (0..32)
            .map(|i| match i % 4 {
                0 => i8::MIN,
                1 => i8::MAX,
                2 => -1,
                _ => 0,
            })
            .collect();
        let wide: Vec<i32> = x.iter().map(|&v| v as i32).collect();
        assert_eq!(pe.matvec(&x).unwrap().outputs, csc.matvec(&wide).unwrap());
    }
}
