//! Per-operation reports and cumulative PE statistics.

use pim_device::{edp, Energy, EnergyLedger, Latency};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign};

/// Result of loading a weight tile into a PE.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadReport {
    /// Clock cycles spent writing.
    pub cycles: u64,
    /// Wall-clock time of the load (write pulses can exceed a clock cycle
    /// on MRAM).
    pub latency: Latency,
    /// Energy split of the load (dominated by the `write` channel).
    pub energy: EnergyLedger,
    /// Device bits actually toggled (differential write).
    pub bits_written: u64,
    /// Write-verify retry pulses issued (stochastic MRAM writes only;
    /// always 0 for deterministic loads).
    pub retried_bits: u64,
    /// Bits still wrong after the retry budget was exhausted.
    pub faulted_bits: u64,
}

/// Result of one matvec on a PE.
#[derive(Debug, Clone, PartialEq)]
pub struct MatvecReport {
    /// Exact INT32 accumulator outputs, one per logical column.
    pub outputs: Vec<i32>,
    /// Clock cycles consumed.
    pub cycles: u64,
    /// Wall-clock time.
    pub latency: Latency,
    /// Energy split of the operation.
    pub energy: EnergyLedger,
}

impl MatvecReport {
    /// The accounting half of the report (everything but the outputs).
    pub fn cost(&self) -> MatvecCost {
        MatvecCost {
            cycles: self.cycles,
            latency: self.latency,
            energy: self.energy,
        }
    }
}

/// The analytic timing/energy bill of one matvec on a loaded tile.
///
/// The PEs' cycle and energy models are closed-form in the tile shape and
/// configuration — they do not depend on the activation data — so this
/// cost is computed **once at load/update time** and replayed for every
/// matvec on the tile. It is the accounting half of a [`MatvecReport`],
/// `Copy` so the zero-alloc hot path ([`SparsePe::matvec_into`],
/// [`SparsePe::matvec_batch`]) can return it without touching the heap.
///
/// [`SparsePe::matvec_into`]: crate::SparsePe::matvec_into
/// [`SparsePe::matvec_batch`]: crate::SparsePe::matvec_batch
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MatvecCost {
    /// Clock cycles consumed.
    pub cycles: u64,
    /// Wall-clock time.
    pub latency: Latency,
    /// Energy split of the operation.
    pub energy: EnergyLedger,
}

/// Cumulative counters over a PE's lifetime (or since the last reset).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PeStats {
    /// Total clock cycles across all operations.
    pub cycles: u64,
    /// Total elapsed time.
    pub busy_time: Latency,
    /// Total energy, split by channel.
    pub energy: EnergyLedger,
    /// Number of weight-tile loads.
    pub loads: u64,
    /// Number of matvec operations.
    pub matvecs: u64,
    /// Total MAC operations performed (occupied slots × matvecs).
    pub macs: u64,
    /// Device bits toggled by weight writes across all loads.
    pub write_bits: u64,
    /// Write-verify retry pulses across all loads (stochastic MRAM writes).
    pub write_retries: u64,
    /// Bits left corrupted after write-verify gave up.
    pub write_faults: u64,
}

impl PeStats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds a load report into the counters.
    pub fn record_load(&mut self, report: &LoadReport) {
        self.cycles += report.cycles;
        self.busy_time += report.latency;
        self.energy += report.energy;
        self.loads += 1;
        self.write_bits += report.bits_written;
        self.write_retries += report.retried_bits;
        self.write_faults += report.faulted_bits;
    }

    /// Folds a matvec report into the counters.
    pub fn record_matvec(&mut self, report: &MatvecReport, macs: u64) {
        self.record_matvec_cost(&report.cost(), macs);
    }

    /// Folds the accounting of one matvec into the counters without
    /// materializing a full [`MatvecReport`] — the zero-alloc hot path.
    /// Arithmetic is identical to [`record_matvec`](Self::record_matvec).
    pub fn record_matvec_cost(&mut self, cost: &MatvecCost, macs: u64) {
        self.cycles += cost.cycles;
        self.busy_time += cost.latency;
        self.energy += cost.energy;
        self.matvecs += 1;
        self.macs += macs;
    }

    /// Total energy consumed.
    pub fn total_energy(&self) -> Energy {
        self.energy.total()
    }

    /// MACs per nanosecond (0 when idle) — a throughput figure of merit.
    pub fn macs_per_ns(&self) -> f64 {
        let t = self.busy_time.as_ns();
        if t == 0.0 {
            0.0
        } else {
            self.macs as f64 / t
        }
    }

    /// Energy-delay product (pJ·ns) of the recorded activity.
    pub fn edp(&self) -> f64 {
        edp(self.total_energy(), self.busy_time)
    }

    /// The counters accumulated since `baseline` was snapshotted — the
    /// per-operation delta of a long-lived PE (`PeStats` is `Copy`, so a
    /// baseline is just a saved value of [`SparsePe::stats`]).
    ///
    /// [`SparsePe::stats`]: crate::SparsePe::stats
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `baseline` is not an earlier snapshot of
    /// this counter stream (counters would go backwards).
    pub fn since(&self, baseline: &PeStats) -> PeStats {
        debug_assert!(
            self.cycles >= baseline.cycles && self.matvecs >= baseline.matvecs,
            "baseline is not an earlier snapshot"
        );
        PeStats {
            cycles: self.cycles - baseline.cycles,
            busy_time: self.busy_time - baseline.busy_time,
            energy: self.energy - baseline.energy,
            loads: self.loads - baseline.loads,
            matvecs: self.matvecs - baseline.matvecs,
            macs: self.macs - baseline.macs,
            write_bits: self.write_bits - baseline.write_bits,
            write_retries: self.write_retries - baseline.write_retries,
            write_faults: self.write_faults - baseline.write_faults,
        }
    }
}

impl Add for PeStats {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        Self {
            cycles: self.cycles + rhs.cycles,
            busy_time: self.busy_time + rhs.busy_time,
            energy: self.energy + rhs.energy,
            loads: self.loads + rhs.loads,
            matvecs: self.matvecs + rhs.matvecs,
            macs: self.macs + rhs.macs,
            write_bits: self.write_bits + rhs.write_bits,
            write_retries: self.write_retries + rhs.write_retries,
            write_faults: self.write_faults + rhs.write_faults,
        }
    }
}

impl AddAssign for PeStats {
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl Sum for PeStats {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::new(), Add::add)
    }
}

impl fmt::Display for PeStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} cycles, {} busy, {} loads ({} bits written), {} matvecs, {} MACs, energy {}",
            self.cycles,
            self.busy_time,
            self.loads,
            self.write_bits,
            self.matvecs,
            self.macs,
            self.energy
        )?;
        if self.write_retries > 0 || self.write_faults > 0 {
            write!(
                f,
                ", {} write retries, {} residual faults",
                self.write_retries, self.write_faults
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_device::Energy;

    fn load_report() -> LoadReport {
        let mut energy = EnergyLedger::new();
        energy.add_write(Energy::from_pj(100.0));
        LoadReport {
            cycles: 10,
            latency: Latency::from_ns(10.0),
            energy,
            bits_written: 512,
            retried_bits: 2,
            faulted_bits: 1,
        }
    }

    fn matvec_report() -> MatvecReport {
        let mut energy = EnergyLedger::new();
        energy.add_read(Energy::from_pj(5.0));
        energy.add_compute(Energy::from_pj(3.0));
        MatvecReport {
            outputs: vec![1, 2],
            cycles: 8,
            latency: Latency::from_ns(8.0),
            energy,
        }
    }

    #[test]
    fn stats_accumulate_loads_and_matvecs() {
        let mut stats = PeStats::new();
        stats.record_load(&load_report());
        stats.record_matvec(&matvec_report(), 64);
        stats.record_matvec(&matvec_report(), 64);
        assert_eq!(stats.loads, 1);
        assert_eq!(stats.matvecs, 2);
        assert_eq!(stats.cycles, 10 + 16);
        assert_eq!(stats.macs, 128);
        assert_eq!(stats.write_bits, 512);
        assert_eq!(stats.write_retries, 2);
        assert_eq!(stats.write_faults, 1);
        assert!((stats.total_energy().as_pj() - 116.0).abs() < 1e-9);
    }

    #[test]
    fn throughput_is_macs_over_time() {
        let mut stats = PeStats::new();
        assert_eq!(stats.macs_per_ns(), 0.0);
        stats.record_matvec(&matvec_report(), 80);
        assert!((stats.macs_per_ns() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn stats_sum_over_pes_and_delta_since_baseline() {
        let mut a = PeStats::new();
        a.record_load(&load_report());
        let mut b = PeStats::new();
        b.record_matvec(&matvec_report(), 64);
        let total: PeStats = [a, b].into_iter().sum();
        assert_eq!(total.loads, 1);
        assert_eq!(total.matvecs, 1);
        assert_eq!(total.cycles, 18);

        let baseline = total;
        let mut after = total;
        after.record_matvec(&matvec_report(), 32);
        let delta = after.since(&baseline);
        assert_eq!(delta.matvecs, 1);
        assert_eq!(delta.macs, 32);
        assert_eq!(delta.loads, 0);
        assert!((delta.total_energy().as_pj() - 8.0).abs() < 1e-9);
        assert!(delta.edp() > 0.0);
    }

    #[test]
    fn display_covers_counters() {
        let mut stats = PeStats::new();
        stats.record_load(&load_report());
        let s = stats.to_string();
        assert!(s.contains("loads"));
        assert!(s.contains("MACs"));
    }
}
