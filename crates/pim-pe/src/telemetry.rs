//! Live telemetry mirror of the [`PeStats`] ledger.
//!
//! [`PeTelemetry`] is a bundle of pre-registered counters that mirrors
//! every `PeStats` field into a [`TelemetryRegistry`], labelled by a
//! `source` (e.g. `serve` vs `learn`) so concurrent subsystems stay
//! distinguishable. Feeding it the same per-operation **deltas** the
//! ledgers accumulate makes read/write/leakage/compute energy observable
//! *mid-run* — and, because counter addition rounds exactly like the
//! ledgers' `+=` chains, a single-threaded recording order reproduces the
//! ledger totals bit-exactly.

use crate::stats::PeStats;
use pim_telemetry::{Counter, TelemetryRegistry};

/// Energy channel label values, in [`EnergyLedger`] field order
/// (leakage, read, write, compute).
///
/// [`EnergyLedger`]: pim_device::EnergyLedger
pub const ENERGY_CHANNELS: [&str; 4] = ["leakage", "read", "write", "compute"];

/// Metric family name of the per-channel energy counters.
pub const ENERGY_METRIC: &str = "pim_pe_energy_picojoules_total";

/// Pre-registered counters mirroring a [`PeStats`] stream.
///
/// Clones share the same counters, so handing a clone to every worker
/// replica of a model aggregates the whole pool into one series.
#[derive(Debug, Clone)]
pub struct PeTelemetry {
    energy: [Counter; 4],
    cycles: Counter,
    busy_ns: Counter,
    loads: Counter,
    matvecs: Counter,
    macs: Counter,
    write_bits: Counter,
    write_retries: Counter,
    write_faults: Counter,
}

impl PeTelemetry {
    /// Registers (or re-acquires) the PE counter families for `source`.
    pub fn register(registry: &TelemetryRegistry, source: &str) -> Self {
        Self::register_with(registry, source, &[])
    }

    /// Like [`register`](PeTelemetry::register), with `extra` label pairs
    /// appended after the `source` (and `channel`) labels — e.g.
    /// `("replica", "2")` so a cluster can attribute PE energy per node.
    /// Distinct label lists register distinct series; identical ones
    /// re-acquire the same cells (the registry's get-or-register rule).
    pub fn register_with(
        registry: &TelemetryRegistry,
        source: &str,
        extra: &[(&str, &str)],
    ) -> Self {
        let energy = ENERGY_CHANNELS.map(|channel| {
            let mut labels = vec![("source", source), ("channel", channel)];
            labels.extend_from_slice(extra);
            registry.counter_with(ENERGY_METRIC, "Simulated PE energy by channel", &labels)
        });
        let c = |name: &str, help: &str| {
            let mut labels = vec![("source", source)];
            labels.extend_from_slice(extra);
            registry.counter_with(name, help, &labels)
        };
        Self {
            energy,
            cycles: c("pim_pe_cycles_total", "Simulated PE clock cycles"),
            busy_ns: c("pim_pe_busy_nanoseconds_total", "Simulated PE busy time"),
            loads: c("pim_pe_loads_total", "Weight-tile loads"),
            matvecs: c("pim_pe_matvecs_total", "PE matvec operations"),
            macs: c("pim_pe_macs_total", "MAC operations executed"),
            write_bits: c("pim_pe_write_bits_total", "Device bits toggled by writes"),
            write_retries: c(
                "pim_pe_write_retries_total",
                "Write-verify retry pulses (stochastic MRAM)",
            ),
            write_faults: c(
                "pim_pe_write_faults_total",
                "Bits left corrupted after write-verify gave up",
            ),
        }
    }

    /// Folds one ledger **delta** (a per-operation or per-run `PeStats`,
    /// not a cumulative snapshot) into the counters.
    pub fn record(&self, delta: &PeStats) {
        self.energy[0].add(delta.energy.leakage.as_pj());
        self.energy[1].add(delta.energy.read.as_pj());
        self.energy[2].add(delta.energy.write.as_pj());
        self.energy[3].add(delta.energy.compute.as_pj());
        self.cycles.add(delta.cycles as f64);
        self.busy_ns.add(delta.busy_time.as_ns());
        self.loads.add(delta.loads as f64);
        self.matvecs.add(delta.matvecs as f64);
        self.macs.add(delta.macs as f64);
        self.write_bits.add(delta.write_bits as f64);
        self.write_retries.add(delta.write_retries as f64);
        self.write_faults.add(delta.write_faults as f64);
    }

    /// Current per-channel energy counter values, in
    /// [`ENERGY_CHANNELS`] order.
    pub fn energy_pj(&self) -> [f64; 4] {
        [
            self.energy[0].value(),
            self.energy[1].value(),
            self.energy[2].value(),
            self.energy[3].value(),
        ]
    }

    /// Sum of the energy channels, associated exactly like
    /// [`EnergyLedger::total`](pim_device::EnergyLedger::total)
    /// (leakage + read + write + compute, left to right).
    pub fn total_energy_pj(&self) -> f64 {
        let [leakage, read, write, compute] = self.energy_pj();
        leakage + read + write + compute
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_device::{Energy, EnergyLedger, Latency};

    fn delta(read_pj: f64, write_pj: f64, bits: u64) -> PeStats {
        let mut energy = EnergyLedger::new();
        energy.add_read(Energy::from_pj(read_pj));
        energy.add_write(Energy::from_pj(write_pj));
        PeStats {
            cycles: 7,
            busy_time: Latency::from_ns(3.0),
            energy,
            loads: 1,
            matvecs: 2,
            macs: 16,
            write_bits: bits,
            write_retries: 0,
            write_faults: 0,
        }
    }

    #[test]
    fn recorded_deltas_reproduce_the_ledger_bitwise() {
        let registry = TelemetryRegistry::new();
        let tel = PeTelemetry::register(&registry, "test");
        let mut ledger = PeStats::new();
        for i in 0..5 {
            let d = delta(0.1 * i as f64 + 0.01, 0.3, 8);
            tel.record(&d);
            ledger += d;
        }
        let [leakage, read, write, compute] = tel.energy_pj();
        assert_eq!(leakage.to_bits(), ledger.energy.leakage.as_pj().to_bits());
        assert_eq!(read.to_bits(), ledger.energy.read.as_pj().to_bits());
        assert_eq!(write.to_bits(), ledger.energy.write.as_pj().to_bits());
        assert_eq!(compute.to_bits(), ledger.energy.compute.as_pj().to_bits());
        assert_eq!(
            tel.total_energy_pj().to_bits(),
            ledger.total_energy().as_pj().to_bits(),
            "channel sum must associate like EnergyLedger::total"
        );
        let text = registry.render_prometheus();
        assert!(text.contains("pim_pe_write_bits_total{source=\"test\"} 40"));
        assert!(text.contains("channel=\"read\""));
    }

    #[test]
    fn extra_labels_register_distinct_series() {
        let registry = TelemetryRegistry::new();
        let r0 = PeTelemetry::register_with(&registry, "serve", &[("replica", "0")]);
        let r1 = PeTelemetry::register_with(&registry, "serve", &[("replica", "1")]);
        r0.record(&delta(1.0, 0.0, 0));
        r1.record(&delta(2.0, 0.0, 0));
        assert_eq!(r0.energy_pj()[1], 1.0);
        assert_eq!(r1.energy_pj()[1], 2.0);
        // Same labels re-acquire the same cells.
        let again = PeTelemetry::register_with(&registry, "serve", &[("replica", "0")]);
        assert_eq!(again.energy_pj()[1], 1.0);
        let text = registry.render_prometheus();
        assert!(text.contains("source=\"serve\""));
        assert!(text.contains("replica=\"1\""));
    }

    #[test]
    fn clones_share_counters_across_replicas() {
        let registry = TelemetryRegistry::new();
        let a = PeTelemetry::register(&registry, "pool");
        let b = a.clone();
        a.record(&delta(1.0, 0.0, 0));
        b.record(&delta(1.0, 0.0, 0));
        assert_eq!(a.energy_pj()[1], 2.0);
        // Re-registering the same source re-acquires the same cells.
        let c = PeTelemetry::register(&registry, "pool");
        assert_eq!(c.energy_pj()[1], 2.0);
    }
}
