//! The transposed SRAM PE buffer used during backpropagation (Fig. 6-2).
//!
//! Error propagation needs `e^{l−1} = (W^l)ᵀ · e^l` (paper eq. 1), but the
//! forward PEs store `W` column-compressed — the transpose of an N:M matrix
//! is *not* N:M along its new reduction dimension. The paper's answer is a
//! pool of **transposed SRAM PE buffers**: each training step, the current
//! layer's weights are transposed and *written* into such a buffer, which
//! then performs the in-memory matvec as usual.
//!
//! The buffer reuses the SRAM PE fabric but with free-form column
//! compression: a column's surviving entries are stored in ascending
//! reduction order, the 4-bit index field holds the offset within a sliding
//! 16-wide window, and the index generator advances the window when the
//! stored offsets wrap — so a matvec sweeps `8 bits × windows` cycles where
//! `windows` is the deepest window count over all stored columns. Columns
//! whose entries exceed one column group spill into neighbours and are
//! merged by the row-wise accumulator, exactly as in the forward PE.
//!
//! The recurring **write cost** of refreshing this buffer every step is the
//! honest price of training support, and it is why the buffers are SRAM:
//! the same refresh in MRAM would pay 0.048 pJ and 10 ns per toggled bit.

use crate::error::PeError;
use crate::sram::SramPeConfig;
use crate::stats::{LoadReport, MatvecReport, PeStats};
use pim_device::sram_cell::SramCellKind;
use pim_device::units::Latency;
use pim_device::EnergyLedger;
use pim_sparse::Matrix;

/// Window width addressed by the 4-bit index field.
const WINDOW: usize = 16;

/// A transposed-weight SRAM buffer.
///
/// # Example
///
/// ```
/// use pim_pe::TransposedSramPe;
/// use pim_sparse::Matrix;
///
/// // Forward weight W: 4 inputs × 2 outputs.
/// let w = Matrix::from_rows(vec![
///     vec![1i8, 0],
///     vec![0, 2],
///     vec![3, 0],
///     vec![0, 0],
/// ])?;
/// let mut buf = TransposedSramPe::new();
/// buf.write_transposed(&w)?;
/// // Error propagation: e_prev = Wᵀ-stored matvec over e (len = outputs).
/// let e_prev = buf.matvec(&[10, -1])?;
/// assert_eq!(e_prev.outputs, vec![10, -2, 30, 0]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct TransposedSramPe {
    config: SramPeConfig,
    /// Per stored column (= original weight row): ascending
    /// `(reduction_index, value)` entries.
    columns: Vec<Vec<(usize, i8)>>,
    /// Reduction length (= original output count).
    reduction: usize,
    stats: PeStats,
}

impl TransposedSramPe {
    /// Creates a buffer with the paper's 128×96 geometry.
    pub fn new() -> Self {
        Self::with_config(SramPeConfig::dac24())
    }

    /// Creates a buffer with an explicit configuration.
    pub fn with_config(config: SramPeConfig) -> Self {
        Self {
            config,
            columns: Vec::new(),
            reduction: 0,
            stats: PeStats::new(),
        }
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> &PeStats {
        &self.stats
    }

    /// Clears the cumulative statistics.
    pub fn reset_stats(&mut self) {
        self.stats = PeStats::new();
    }

    /// Writes the transpose of forward weight `w` (`[inputs, outputs]`)
    /// into the buffer, replacing previous contents. Only non-zero entries
    /// are stored (the mask's zeros compress away).
    ///
    /// # Errors
    ///
    /// Returns [`PeError::CapacityExceeded`] if the transposed layout does
    /// not fit the array.
    pub fn write_transposed(&mut self, w: &Matrix<i8>) -> Result<LoadReport, PeError> {
        let (inputs, outputs) = w.shape();
        // Stored matrix is Wᵀ: `inputs` columns, reduction length `outputs`.
        let mut columns: Vec<Vec<(usize, i8)>> = vec![Vec::new(); inputs];
        for k in 0..inputs {
            for c in 0..outputs {
                let v = w[(k, c)];
                if v != 0 {
                    columns[k].push((c, v));
                }
            }
        }
        // Capacity: total stored entries must fit the array. Columns far
        // smaller than a group are packed several to a group and processed
        // in time-multiplexed rounds (see `matvec`'s cycle model), so the
        // only hard limits are total slots and the widest single column.
        let total_entries: usize = columns.iter().map(Vec::len).sum();
        if total_entries > self.config.capacity_slots() {
            return Err(PeError::CapacityExceeded {
                required: total_entries,
                available: self.config.capacity_slots(),
            });
        }
        if let Some(widest) = columns.iter().map(Vec::len).max() {
            if widest > self.config.rows * self.config.column_groups {
                return Err(PeError::CapacityExceeded {
                    required: widest,
                    available: self.config.rows * self.config.column_groups,
                });
            }
        }

        let total_slots: u64 = columns.iter().map(|c| c.len() as u64).sum();
        let rows_touched = columns
            .iter()
            .map(|c| c.len().min(self.config.rows))
            .max()
            .unwrap_or(0) as u64;
        let cycles = rows_touched.max(1);
        let latency = Latency::from_cycles(cycles, self.config.tech.clock_mhz());
        let pair_bits = (self.config.weight_bits + self.config.index_bits) as u64;
        let bits_written = total_slots * pair_bits;

        let mut energy = EnergyLedger::new();
        let w_cell =
            pim_device::sram_cell::SramCell::new(SramCellKind::Compute8T, &self.config.tech);
        let i_cell = pim_device::sram_cell::SramCell::new(SramCellKind::Index6T, &self.config.tech);
        energy.add_write(
            w_cell.write_energy() * (total_slots * self.config.weight_bits as u64) as f64
                + i_cell.write_energy() * (total_slots * self.config.index_bits as u64) as f64,
        );
        energy.add_leakage(
            self.config.tech.sram_leakage_per_bit() * self.config.total_cells() as f64 * latency,
        );

        self.columns = columns;
        self.reduction = outputs;
        let report = LoadReport {
            cycles,
            latency,
            energy,
            bits_written,
            retried_bits: 0,
            faulted_bits: 0,
        };
        self.stats.record_load(&report);
        Ok(report)
    }

    /// Propagates an error vector: returns `e_prev[k] = Σ_c W[k][c]·e[c]`.
    ///
    /// # Errors
    ///
    /// Returns [`PeError::NotLoaded`] before any write, or
    /// [`PeError::InputLength`] on a length mismatch.
    pub fn matvec(&mut self, e: &[i32]) -> Result<MatvecReport, PeError> {
        if self.columns.is_empty() {
            return Err(PeError::NotLoaded);
        }
        if e.len() != self.reduction {
            return Err(PeError::InputLength {
                expected: self.reduction,
                actual: e.len(),
            });
        }

        let outputs: Vec<i32> = self
            .columns
            .iter()
            .map(|col| {
                col.iter()
                    .map(|&(c, v)| v as i64 * e[c] as i64)
                    .sum::<i64>() as i32
            })
            .collect();

        // Cycle model: 8 bit planes × deepest window sweep, repeated for
        // each time-multiplexed round (the 8 column groups serve at most 8
        // stored columns — or fewer, when a column spills over groups — per
        // round).
        let windows = self
            .columns
            .iter()
            .map(|col| {
                let mut distinct = 0usize;
                let mut last = usize::MAX;
                for &(c, _) in col {
                    let w = c / WINDOW;
                    if w != last {
                        distinct += 1;
                        last = w;
                    }
                }
                distinct
            })
            .max()
            .unwrap_or(0)
            .max(1);
        let groups_demanded: usize = self
            .columns
            .iter()
            .map(|col| col.len().div_ceil(self.config.rows).max(1))
            .sum();
        let rounds = groups_demanded.div_ceil(self.config.column_groups).max(1) as u64;
        let cycles = rounds * self.config.weight_bits as u64 * windows as u64 + 3;
        let latency = Latency::from_cycles(cycles, self.config.tech.clock_mhz());

        let comp = &self.config.components;
        let mut energy = EnergyLedger::new();
        energy.add_leakage(
            self.config.tech.sram_leakage_per_bit() * self.config.total_cells() as f64 * latency,
        );
        energy.add_read(
            (comp.decoder.power() + comp.bit_cell.power() + comp.index_decoder.power()) * latency,
        );
        energy.add_compute(
            (comp.shift_acc.power() + comp.adder.power() + comp.global_relu.power()) * latency,
        );

        let macs: u64 = self.columns.iter().map(|c| c.len() as u64).sum();
        let report = MatvecReport {
            outputs,
            cycles,
            latency,
            energy,
        };
        self.stats.record_matvec(&report, macs);
        Ok(report)
    }
}

impl Default for TransposedSramPe {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_sparse::gemm::dense_matvec;
    use pim_sparse::prune::prune_magnitude;
    use pim_sparse::NmPattern;
    use proptest::prelude::*;

    fn nm_sparse_weight(rows: usize, cols: usize) -> Matrix<i8> {
        let dense = Matrix::from_fn(rows, cols, |r, c| ((r * 23 + c * 7) % 31) as i8 - 15);
        let mask = prune_magnitude(&dense, NmPattern::one_of_four()).unwrap();
        mask.apply(&dense).unwrap()
    }

    #[test]
    fn error_propagation_matches_dense_transpose() {
        let w = nm_sparse_weight(24, 6);
        let mut buf = TransposedSramPe::new();
        buf.write_transposed(&w).unwrap();
        let e: Vec<i32> = (0..6).map(|i| i * 5 - 12).collect();
        let got = buf.matvec(&e).unwrap().outputs;
        // Reference: dense matvec on Wᵀ (rows = outputs after transpose).
        let wt = w.transposed();
        let expect = dense_matvec(&wt, &e).unwrap();
        assert_eq!(got, expect);
    }

    #[test]
    fn transposed_nm_matrix_is_not_nm_but_still_fits() {
        // 1:4 sparse W transposed has irregular columns; the buffer must
        // accept it (that is its whole purpose).
        let w = nm_sparse_weight(64, 8);
        let mut buf = TransposedSramPe::new();
        assert!(buf.write_transposed(&w).is_ok());
    }

    #[test]
    fn rewrite_cost_is_paid_every_step() {
        let w = nm_sparse_weight(32, 8);
        let mut buf = TransposedSramPe::new();
        let r1 = buf.write_transposed(&w).unwrap();
        let r2 = buf.write_transposed(&w).unwrap();
        assert_eq!(buf.stats().loads, 2);
        assert!(r1.energy.write.as_pj() > 0.0);
        assert_eq!(r1.bits_written, r2.bits_written);
    }

    #[test]
    fn cycles_scale_with_window_depth() {
        // Wide reduction (many output windows) sweeps more cycles.
        let narrow = nm_sparse_weight(8, 16); // reduction 16 → ≥1 window
        let wide = nm_sparse_weight(8, 128); // reduction 128 → up to 8 windows
        let mut buf = TransposedSramPe::new();
        buf.write_transposed(&narrow).unwrap();
        let c_narrow = buf.matvec(&[1; 16]).unwrap().cycles;
        buf.write_transposed(&wide).unwrap();
        let c_wide = buf.matvec(&[1; 128]).unwrap().cycles;
        assert!(c_wide > c_narrow, "{c_wide} vs {c_narrow}");
    }

    #[test]
    fn capacity_rejects_oversized_transpose() {
        // A dense 64×1024 weight transposes to 1024 columns: far more than
        // 8 groups can serve.
        let w = Matrix::from_fn(1024, 64, |r, c| ((r + c) % 5) as i8 + 1);
        let mut buf = TransposedSramPe::new();
        assert!(matches!(
            buf.write_transposed(&w),
            Err(PeError::CapacityExceeded { .. })
        ));
    }

    #[test]
    fn errors_before_write_and_on_length() {
        let mut buf = TransposedSramPe::new();
        assert_eq!(buf.matvec(&[1, 2]), Err(PeError::NotLoaded));
        let w = nm_sparse_weight(16, 4);
        buf.write_transposed(&w).unwrap();
        assert!(buf.matvec(&[1, 2, 3]).is_err());
    }

    #[test]
    fn zero_columns_produce_zero_outputs() {
        let mut w = Matrix::zeros(8, 4);
        w[(0, 0)] = 5i8;
        let mut buf = TransposedSramPe::new();
        buf.write_transposed(&w).unwrap();
        let out = buf.matvec(&[2, 2, 2, 2]).unwrap().outputs;
        assert_eq!(out, vec![10, 0, 0, 0, 0, 0, 0, 0]);
    }

    proptest! {
        // Transposition sanity over deliberately NON-square shapes: the
        // host-side transpose is an involution, and the buffer's windowed
        // compressed layout computes exactly the naive Wᵀ·e product.
        #[test]
        fn transpose_is_an_involution_and_the_buffer_matches_naive(
            (rows, cols, seed) in (1usize..40, 1usize..20, 0usize..64),
        ) {
            let w = Matrix::from_fn(rows, cols, |r, c| {
                (((r * 31 + c * 17 + seed * 7) % 29) as i8) - 14
            });
            // transpose(transpose(x)) == x, and the shape flips.
            let wt = w.transposed();
            prop_assert_eq!(wt.shape(), (cols, rows));
            prop_assert_eq!(&wt.transposed(), &w);
            // The buffer stores Wᵀ; its matvec must equal both the dense
            // reference on `wt` and a directly hand-folded Wᵀ·e.
            let mut buf = TransposedSramPe::new();
            buf.write_transposed(&w).unwrap();
            let e: Vec<i32> = (0..cols).map(|c| (c as i32 % 7) - 3).collect();
            let got = buf.matvec(&e).unwrap().outputs;
            prop_assert_eq!(&got, &dense_matvec(&wt, &e).unwrap());
            let naive: Vec<i32> = (0..rows)
                .map(|k| (0..cols).map(|c| w[(k, c)] as i32 * e[c]).sum())
                .collect();
            prop_assert_eq!(got, naive);
        }
    }
}
