//! Compile-once model artifacts and their per-worker replicas.

use crate::error::RuntimeError;
use pim_core::pe_inference::PeRepNet;
use pim_core::shard::ShardedPeRepNet;
use pim_nn::models::RepNet;
use pim_nn::tensor::Tensor;
use pim_par::WorkPool;
use pim_pe::{PeStats, PeTelemetry};
use std::fmt;
use std::sync::Arc;

/// The execution backend of an artifact: one macro owning every tile, or
/// the tiles dealt across several macro groups (MARS-style). Both produce
/// bit-identical logits and ledgers; only the simulated topology differs.
#[derive(Debug, Clone)]
enum Branch {
    // Boxed: the compiled macro (tile programs + scratch) dwarfs the
    // sharded handle, and artifacts move through worker queues by value.
    Single(Box<PeRepNet>),
    Sharded(ShardedPeRepNet),
}

impl Branch {
    fn tile_count(&self) -> usize {
        match self {
            Branch::Single(b) => b.tile_count(),
            Branch::Sharded(s) => s.tile_count(),
        }
    }

    fn attach_telemetry(&mut self, telemetry: PeTelemetry) {
        match self {
            Branch::Single(b) => b.attach_telemetry(telemetry),
            Branch::Sharded(s) => s.attach_telemetry(telemetry),
        }
    }

    fn attach_pool(&mut self, pool: Arc<WorkPool>) {
        match self {
            Branch::Single(b) => b.attach_pool(pool),
            Branch::Sharded(s) => s.attach_pool(pool),
        }
    }

    fn predict(&mut self, model: &mut RepNet, batch: &Tensor) -> (Tensor, PeStats) {
        match self {
            Branch::Single(b) => b.predict(model, batch),
            Branch::Sharded(s) => s.predict(model, batch),
        }
    }
}

/// A model lowered onto the PEs **once** — INT8 quantization, N:M CSC
/// compression, and column tiling all happen at [`CompiledModel::compile`]
/// time, and the loaded SRAM tile programs are cached inside. Serving a
/// request replays the cached tiles; nothing is recompiled per request.
///
/// The artifact is the unit of registration with the runtime: each worker
/// thread takes a replica (its own set of
/// simulated PEs plus a frozen-backbone clone), so workers never contend
/// on shared PE state.
#[derive(Debug, Clone)]
pub struct CompiledModel {
    name: String,
    /// Frozen backbone + reference branch; cloned per worker because the
    /// forward pass needs `&mut` (activation workspaces).
    model: RepNet,
    /// The learnable branch as loaded PE tiles (single macro or sharded
    /// across macro groups).
    branch: Branch,
    /// Expected per-sample input shape `[C, H, W]`.
    input_shape: Vec<usize>,
    num_classes: usize,
    /// PE ledger of the compile-time tile loads.
    compile_stats: PeStats,
}

impl CompiledModel {
    /// Lowers `model` through quantization, CSC compression, and tile
    /// mapping, caching the loaded PE programs.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Compile`] if a layer tile exceeds PE
    /// capacity.
    pub fn compile(name: impl Into<String>, model: &RepNet) -> Result<Self, RuntimeError> {
        let mut model = model.clone();
        let branch = PeRepNet::compile(&mut model)?;
        let cfg = model.backbone().config().clone();
        let num_classes = model.classifier().inner().weight_matrix().cols();
        let compile_stats = branch.cumulative_stats();
        Ok(Self {
            name: name.into(),
            model,
            branch: Branch::Single(Box::new(branch)),
            input_shape: vec![cfg.in_channels, cfg.image_size, cfg.image_size],
            num_classes,
            compile_stats,
        })
    }

    /// Wraps an **already-lowered** branch into a servable artifact
    /// without recompiling: the caller hands over a model and the PE tile
    /// programs it maintains itself (e.g. `pim-learn` keeps a resident
    /// branch up to date with cheap differential SRAM writes and publishes
    /// it here for a hot swap).
    ///
    /// The tiles are cloned as-is — bit patterns, quantization scales,
    /// and cumulative PE ledgers included — so serving from this artifact
    /// is bit-exact with serving from the caller's branch.
    ///
    /// # Panics
    ///
    /// Panics if the branch holds no tiles (an empty branch cannot serve).
    pub fn from_branch(name: impl Into<String>, model: &RepNet, branch: &PeRepNet) -> Self {
        assert!(
            branch.tile_count() > 0,
            "cannot build a servable artifact from an empty branch"
        );
        let cfg = model.backbone().config().clone();
        let num_classes = model.classifier().inner().weight_matrix().cols();
        // The artifact will be served under the runtime's own telemetry
        // (attached at registration/swap); drop whatever the caller had
        // attached — a published clone must not keep feeding e.g. the
        // learn-side `source="learn"` counters from serving traffic.
        let mut branch = branch.clone();
        branch.detach_telemetry();
        let compile_stats = branch.cumulative_stats();
        Self {
            name: name.into(),
            model: model.clone(),
            branch: Branch::Single(Box::new(branch)),
            input_shape: vec![cfg.in_channels, cfg.image_size, cfg.image_size],
            num_classes,
            compile_stats,
        }
    }

    /// Re-deploys the artifact across `groups` simulated macro groups
    /// (MARS-style): every layer's tiles are dealt round-robin and the
    /// scatter/gather execution path reconstructs the single-macro answer
    /// — logits and run ledgers stay bit-exact. `groups <= 1` leaves the
    /// artifact on a single macro.
    ///
    /// # Panics
    ///
    /// Panics if the artifact is already sharded (shard the single-macro
    /// artifact instead of re-dealing an already-dealt one).
    pub fn shard(mut self, groups: usize) -> Self {
        if groups <= 1 {
            return self;
        }
        self.branch = match self.branch {
            Branch::Single(b) => Branch::Sharded(ShardedPeRepNet::shard(&b, groups)),
            Branch::Sharded(_) => panic!("artifact {} is already sharded", self.name),
        };
        self
    }

    /// Number of simulated macro groups serving this artifact (1 when
    /// unsharded).
    pub fn macro_groups(&self) -> usize {
        match &self.branch {
            Branch::Single(_) => 1,
            Branch::Sharded(s) => s.groups(),
        }
    }

    /// Reference inference on a private clone of the artifact: runs a
    /// `[N, C, H, W]` batch through the cached tiles and returns logits
    /// plus the per-run PE ledger, without touching the artifact's own
    /// state or any runtime. This is the ground truth a canary rollout
    /// compares a live replica's answer against.
    pub fn infer_reference(&self, batch: &Tensor) -> (Tensor, PeStats) {
        let mut replica = self.replica();
        replica.infer_batch(batch)
    }

    /// The registration name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Expected per-sample input shape `[C, H, W]`.
    pub fn input_shape(&self) -> &[usize] {
        &self.input_shape
    }

    /// Number of classifier outputs.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Loaded PE tiles cached in the artifact.
    pub fn tile_count(&self) -> usize {
        self.branch.tile_count()
    }

    /// PE ledger of the one-time lowering (tile writes dominate).
    pub fn compile_stats(&self) -> PeStats {
        self.compile_stats
    }

    /// Routes the artifact's per-run PE ledger deltas — and those of every
    /// [`replica`](Self::replica) cloned afterwards, which share the same
    /// underlying counters — into `telemetry`.
    pub(crate) fn attach_pe_telemetry(&mut self, telemetry: PeTelemetry) {
        self.branch.attach_telemetry(telemetry);
    }

    /// Hands the artifact (and every replica cloned afterwards) the
    /// runtime's shared intra-request compute pool.
    pub(crate) fn attach_pool(&mut self, pool: Arc<WorkPool>) {
        self.branch.attach_pool(pool);
    }

    /// A worker-private copy: its own simulated PEs and backbone.
    pub(crate) fn replica(&self) -> ModelReplica {
        ModelReplica {
            model: self.model.clone(),
            branch: self.branch.clone(),
        }
    }
}

impl fmt::Display for CompiledModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: input {:?} -> {} classes, {} PE tiles cached",
            self.name,
            self.input_shape,
            self.num_classes,
            self.tile_count()
        )?;
        if self.macro_groups() > 1 {
            write!(f, " across {} macro groups", self.macro_groups())?;
        }
        Ok(())
    }
}

/// One worker's private copy of a compiled model.
#[derive(Debug)]
pub(crate) struct ModelReplica {
    model: RepNet,
    branch: Branch,
}

impl ModelReplica {
    /// Runs a `[N, C, H, W]` batch through the cached tiles, returning
    /// logits and the per-run PE ledger.
    pub fn infer_batch(&mut self, batch: &Tensor) -> (Tensor, PeStats) {
        self.branch.predict(&mut self.model, batch)
    }
}
