//! The serving engine: lock-free sharded admission queue, batcher, worker
//! pool.

use crate::compiled::{CompiledModel, ModelReplica};
use crate::error::RuntimeError;
use crate::queue::{AdmissionQueue, AdmitError};
use crate::request::{InferResponse, ModelId, QueuedRequest, Ticket};
use crate::stats::{RuntimeStats, StatsCollector};
use crate::telemetry::RuntimeTelemetry;
use pim_nn::layers::predictions;
use pim_nn::tensor::Tensor;
use pim_par::{PoolCounters, WorkPool};
use pim_telemetry::Telemetry;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Backstop for every idle worker park: all waits are timed, so a wakeup
/// lost to the lock-free submit/park race costs at most this much latency
/// (never liveness) before the worker re-polls the rings.
const IDLE_POLL: Duration = Duration::from_millis(5);

/// When a worker dispatches a batch instead of waiting for more riders.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Hard cap on riders per PE batch.
    pub max_batch: usize,
    /// How long a worker holding a non-full batch waits for compatible
    /// arrivals before dispatching.
    pub max_wait: Duration,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        Self {
            max_batch: 8,
            max_wait: Duration::from_millis(2),
        }
    }
}

/// Runtime sizing knobs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuntimeConfig {
    /// Worker threads, each owning replica PEs of every model.
    pub workers: usize,
    /// Bound of the shared request queue (backpressure past this).
    pub queue_capacity: usize,
    /// Batching policy.
    pub batch: BatchPolicy,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            queue_capacity: 256,
            batch: BatchPolicy::default(),
        }
    }
}

/// Runtime sizing defaults produced by a `pim-dse` sweep (the `"runtime"`
/// object of `TUNED.json`).
///
/// Feed one to [`RuntimeBuilder::tuned`] to replace the hard-coded
/// [`RuntimeConfig`] defaults with sweep-selected values. Explicit builder
/// calls always win over tuned defaults, regardless of call order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TunedDefaults {
    /// Serving worker threads.
    pub workers: usize,
    /// Intra-request compute pool width.
    pub par_threads: usize,
    /// Per-batch rider cap.
    pub max_batch: usize,
    /// Bounded queue capacity.
    pub queue_capacity: usize,
    /// Compute-pool inline-vs-dispatch cost threshold (estimated scalar
    /// ops below which a fan-out runs inline on the caller).
    pub spawn_threshold: u64,
}

/// Which knobs the user set explicitly (those always beat tuned defaults).
#[derive(Debug, Default, Clone, Copy)]
struct ExplicitKnobs {
    workers: bool,
    queue_capacity: bool,
    max_batch: bool,
}

/// Staged configuration for a [`Runtime`].
#[derive(Debug, Default)]
pub struct RuntimeBuilder {
    config: RuntimeConfig,
    models: Vec<CompiledModel>,
    telemetry: Option<Arc<Telemetry>>,
    /// Intra-request compute pool width; `None` sizes it to the cores left
    /// over after the serving workers.
    par_threads: Option<usize>,
    /// Compute-pool spawn threshold; `None` keeps the pool's default.
    spawn_threshold: Option<u64>,
    /// Extra `replica="<label>"` label on every telemetry family.
    replica_label: Option<String>,
    /// Sweep-selected defaults, applied at [`Self::start`] for every knob
    /// not explicitly set.
    tuned: Option<TunedDefaults>,
    explicit: ExplicitKnobs,
}

impl RuntimeBuilder {
    /// Sets the worker-thread count (min 1).
    pub fn workers(mut self, n: usize) -> Self {
        self.config.workers = n.max(1);
        self.explicit.workers = true;
        self
    }

    /// Sets the bounded queue capacity (min 1).
    pub fn queue_capacity(mut self, n: usize) -> Self {
        self.config.queue_capacity = n.max(1);
        self.explicit.queue_capacity = true;
        self
    }

    /// Sets the per-batch rider cap (min 1).
    pub fn max_batch(mut self, n: usize) -> Self {
        self.config.batch.max_batch = n.max(1);
        self.explicit.max_batch = true;
        self
    }

    /// Installs sweep-selected [`TunedDefaults`] (typically loaded from
    /// `TUNED.json` by `pim-dse`). They replace the hard-coded defaults
    /// for `workers`, `par_threads`, `max_batch`, `queue_capacity`, and
    /// `spawn_threshold`; any of those knobs set explicitly — before *or*
    /// after this call — keeps its explicit value, because resolution
    /// happens once, at [`Self::start`].
    ///
    /// Tuning never changes served results: all five knobs only move work
    /// between threads and batches, and outputs are bit-identical at every
    /// setting (the `pim-par` determinism contract).
    pub fn tuned(mut self, defaults: TunedDefaults) -> Self {
        self.tuned = Some(defaults);
        self
    }

    /// Sets how long workers hold a non-full batch open.
    pub fn max_wait(mut self, wait: Duration) -> Self {
        self.config.batch.max_wait = wait;
        self
    }

    /// Sets the width of the shared intra-request compute pool (min 1):
    /// every served forward pass fans its tile/row grids out over these
    /// threads (see `pim_par`). `1` degrades to the serial execution path,
    /// bit-for-bit. Without this call the pool is sized to the cores left
    /// over after the serving workers (never below 1), so the two thread
    /// pools don't oversubscribe the host.
    ///
    /// Outputs and PE ledgers are bit-identical at every width — the
    /// parallel tasks only compute; all accounting is folded serially in
    /// the deterministic sequential order.
    pub fn par_threads(mut self, n: usize) -> Self {
        self.par_threads = Some(n.max(1));
        self
    }

    /// Sets the compute pool's cost-aware granularity threshold (min 1):
    /// fan-outs whose estimated scalar work falls below it run inline on
    /// the calling worker instead of being dispatched — small jobs skip
    /// the handoff latency entirely. Purely a scheduling knob: outputs
    /// and ledgers are bit-identical at every setting. Without this call
    /// the pool keeps [`pim_par::DEFAULT_SPAWN_THRESHOLD`] (or the tuned
    /// value when [`tuned`](Self::tuned) defaults are installed).
    pub fn spawn_threshold(mut self, ops: u64) -> Self {
        self.spawn_threshold = Some(ops.max(1));
        self
    }

    /// Attaches a [`Telemetry`] bundle: the runtime registers per-stage
    /// latency histograms (`pim_runtime_stage_seconds{stage=queue|
    /// batch_form|compute|reply}`), queue-depth and batch-size series,
    /// request/rejection/swap counters, and the `source="serve"`
    /// [`PeStats`](pim_pe::PeStats) energy mirror — and records
    /// per-request / per-batch spans and swap events into the bundle's
    /// tracer. Serving behaviour and the [`RuntimeStats`] ledger are
    /// unchanged; with no bundle attached the hot path stays
    /// uninstrumented.
    pub fn telemetry(mut self, telemetry: Arc<Telemetry>) -> Self {
        self.telemetry = Some(telemetry);
        self
    }

    /// Tags every telemetry family this runtime registers with an extra
    /// `replica="<label>"` label, so several runtimes sharing one
    /// [`Telemetry`] bundle (a cluster) stay distinguishable per node.
    /// Distinct labels are distinct series under the registry's
    /// `(name, labels)` get-or-register rule; without this call the
    /// families stay unlabelled, exactly as a standalone runtime registers
    /// them.
    pub fn replica_label(mut self, label: impl Into<String>) -> Self {
        self.replica_label = Some(label.into());
        self
    }

    /// Registers a compiled model; requests name it by the returned id.
    pub fn register(&mut self, model: CompiledModel) -> ModelId {
        self.models.push(model);
        ModelId(self.models.len() - 1)
    }

    /// Spawns the worker pool and opens the queue.
    pub fn start(mut self) -> Runtime {
        // Resolve tuned defaults now, so explicit setter calls win no
        // matter where `tuned()` appeared in the chain.
        if let Some(t) = self.tuned {
            if !self.explicit.workers {
                self.config.workers = t.workers.max(1);
            }
            if !self.explicit.queue_capacity {
                self.config.queue_capacity = t.queue_capacity.max(1);
            }
            if !self.explicit.max_batch {
                self.config.batch.max_batch = t.max_batch.max(1);
            }
            if self.par_threads.is_none() {
                self.par_threads = Some(t.par_threads.max(1));
            }
            if self.spawn_threshold.is_none() {
                self.spawn_threshold = Some(t.spawn_threshold.max(1));
            }
        }
        let replica_label = self.replica_label;
        let telemetry = self
            .telemetry
            .map(|t| RuntimeTelemetry::register(t, replica_label.as_deref()));
        // One compute pool, shared by every worker's replicas: serving
        // workers parallelize across requests, the pool parallelizes
        // within one. Default width = cores not taken by the workers.
        let par_threads = self.par_threads.unwrap_or_else(|| {
            let cores = thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1);
            cores.saturating_sub(self.config.workers).max(1)
        });
        let mut pool = WorkPool::new(par_threads);
        if let Some(ops) = self.spawn_threshold {
            pool = pool.with_spawn_threshold(ops);
        }
        let pool = Arc::new(pool);
        if let Some(tel) = &telemetry {
            tel.pool_threads.set(pool.threads() as f64);
        }
        let slots: Vec<ModelSlot> = self
            .models
            .into_iter()
            .map(|mut m| {
                if let Some(tel) = &telemetry {
                    m.attach_pe_telemetry(tel.pe.clone());
                }
                m.attach_pool(Arc::clone(&pool));
                ModelSlot {
                    version: 0,
                    model: Arc::new(m),
                }
            })
            .collect();
        let model_count = slots.len();
        let shared = Arc::new(Shared {
            pool,
            queue: AdmissionQueue::new(self.config.queue_capacity, model_count),
            batch: DynamicBatchPolicy::new(self.config.batch),
            quotas: (0..model_count)
                .map(|_| AtomicUsize::new(usize::MAX))
                .collect(),
            config: self.config.clone(),
            stats: StatsCollector::new(),
            models: Mutex::new(slots),
            swap_epoch: AtomicU64::new(0),
            telemetry,
        });
        let workers = (0..self.config.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("pim-worker-{i}"))
                    .spawn(move || {
                        // Each worker owns its set of simulated PEs: one
                        // replica of every registered model's cached tile
                        // programs, tagged with the slot version it was
                        // cloned from so hot swaps can refresh it lazily.
                        let mut replicas: Vec<(u64, ModelReplica)> = {
                            let slots = shared.models.lock().expect("model table lock");
                            slots
                                .iter()
                                .map(|s| (s.version, s.model.replica()))
                                .collect()
                        };
                        worker_loop(&shared, &mut replicas, i);
                    })
                    .expect("spawn worker thread")
            })
            .collect();
        Runtime {
            shared,
            workers,
            next_id: AtomicU64::new(0),
        }
    }
}

/// The live batching policy: [`RuntimeConfig::batch`] seeds it, and
/// [`Runtime::set_batch_policy`] retunes it while serving (a governor
/// widening coalescing under pressure). Workers read it at every batch
/// boundary, so a change applies from the next collected batch on.
#[derive(Debug)]
struct DynamicBatchPolicy {
    max_batch: AtomicUsize,
    max_wait_ns: AtomicU64,
}

impl DynamicBatchPolicy {
    fn new(policy: BatchPolicy) -> Self {
        Self {
            max_batch: AtomicUsize::new(policy.max_batch.max(1)),
            max_wait_ns: AtomicU64::new(policy.max_wait.as_nanos().min(u64::MAX as u128) as u64),
        }
    }

    fn load(&self) -> BatchPolicy {
        BatchPolicy {
            max_batch: self.max_batch.load(Ordering::Relaxed),
            max_wait: Duration::from_nanos(self.max_wait_ns.load(Ordering::Relaxed)),
        }
    }

    fn store(&self, policy: BatchPolicy) {
        self.max_batch
            .store(policy.max_batch.max(1), Ordering::Relaxed);
        self.max_wait_ns.store(
            policy.max_wait.as_nanos().min(u64::MAX as u128) as u64,
            Ordering::Relaxed,
        );
    }
}

/// One registered serving slot. The [`ModelId`] handed to clients indexes
/// this table; hot swaps replace `model` in place and bump `version`, so
/// the id stays valid across publishes.
struct ModelSlot {
    /// Bumped on every swap; workers compare it against the version their
    /// private replica was cloned from.
    version: u64,
    model: Arc<CompiledModel>,
}

struct Shared {
    /// The intra-request compute pool every replica fans out over.
    pool: Arc<WorkPool>,
    /// Lock-free admission: packed `closed|depth` word, per-model MPMC
    /// rings, one condvar wake path (see `queue.rs`).
    queue: AdmissionQueue,
    /// The live (retunable) batching policy; `config.batch` is only the
    /// initial value.
    batch: DynamicBatchPolicy,
    /// Per-model admission quotas (`usize::MAX` = unlimited), indexed by
    /// [`ModelId`]. A submit for a slot at or over its quota fails fast
    /// with [`RuntimeError::Throttled`].
    quotas: Vec<AtomicUsize>,
    config: RuntimeConfig,
    stats: StatsCollector,
    /// The serving model table (RCU write side). Locked briefly by
    /// `submit` (shape check), `swap_model` (publish), and workers
    /// re-cloning a swapped replica — never across an inference.
    models: Mutex<Vec<ModelSlot>>,
    /// Bumped after any slot changes; workers poll this cheap atomic once
    /// per batch and only touch the model table when it moved.
    swap_epoch: AtomicU64,
    /// Pre-registered metric handles; `None` leaves the hot path
    /// uninstrumented.
    telemetry: Option<RuntimeTelemetry>,
}

/// The concurrent batched serving engine.
///
/// Compile models once ([`CompiledModel::compile`]), register them, and
/// submit single-sample requests from any number of threads; a sharded
/// worker pool coalesces compatible requests into PE batches under the
/// configured [`BatchPolicy`]. The queue is bounded: when full, `submit`
/// fails fast with [`RuntimeError::QueueFull`] instead of blocking.
///
/// # Example
///
/// ```no_run
/// use pim_runtime::{CompiledModel, Runtime};
/// # use pim_nn::models::{Backbone, BackboneConfig, RepNet, RepNetConfig};
/// # use pim_nn::tensor::Tensor;
/// let model = RepNet::new(
///     Backbone::new(BackboneConfig::tiny()),
///     RepNetConfig { rep_channels: 4, num_classes: 5, seed: 2 },
/// );
/// let mut builder = Runtime::builder().workers(4);
/// let id = builder.register(CompiledModel::compile("tiny", &model)?);
/// let runtime = builder.start();
/// let response = runtime.infer(id, &Tensor::ones(&[1, 8, 8]))?;
/// assert!(response.prediction < 5);
/// println!("{}", runtime.shutdown());
/// # Ok::<(), pim_runtime::RuntimeError>(())
/// ```
pub struct Runtime {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    next_id: AtomicU64,
}

impl Runtime {
    /// Starts configuring a runtime.
    pub fn builder() -> RuntimeBuilder {
        RuntimeBuilder::default()
    }

    /// A snapshot of the models currently being served, in registration
    /// (id) order. Each entry is the artifact a request submitted *now*
    /// would run against; a concurrent [`swap_model`](Self::swap_model)
    /// may replace a slot after the snapshot is taken.
    pub fn models(&self) -> Vec<Arc<CompiledModel>> {
        self.shared
            .models
            .lock()
            .expect("model table lock")
            .iter()
            .map(|s| Arc::clone(&s.model))
            .collect()
    }

    /// Atomically publishes `replacement` into the serving slot `model`
    /// (RCU-style hot swap): requests already batched keep executing on
    /// the replica cloned from the old artifact, and every batch collected
    /// after the swap is served from the new one — workers re-clone their
    /// private PEs lazily, at the next batch boundary, so the swap never
    /// blocks on in-flight inference. Returns the slot's new version
    /// number (starts at 0 when registered, +1 per swap).
    ///
    /// The replacement must keep the slot's client-visible interface:
    /// same input shape and class count. This is what lets `pim-learn`
    /// retrain and republish a model while clients keep using the same
    /// [`ModelId`].
    ///
    /// # Errors
    ///
    /// * [`RuntimeError::UnknownModel`] — `model` was never registered.
    /// * [`RuntimeError::IncompatibleSwap`] — the replacement's input
    ///   shape or class count differs from the slot's.
    pub fn swap_model(
        &self,
        model: ModelId,
        mut replacement: CompiledModel,
    ) -> Result<u64, RuntimeError> {
        if let Some(tel) = &self.shared.telemetry {
            replacement.attach_pe_telemetry(tel.pe.clone());
        }
        replacement.attach_pool(Arc::clone(&self.shared.pool));
        let version = {
            let mut slots = self.shared.models.lock().expect("model table lock");
            let slot = slots
                .get_mut(model.0)
                .ok_or(RuntimeError::UnknownModel { id: model })?;
            if slot.model.input_shape() != replacement.input_shape()
                || slot.model.num_classes() != replacement.num_classes()
            {
                return Err(RuntimeError::IncompatibleSwap {
                    expected_input: slot.model.input_shape().to_vec(),
                    actual_input: replacement.input_shape().to_vec(),
                    expected_classes: slot.model.num_classes(),
                    actual_classes: replacement.num_classes(),
                });
            }
            slot.version += 1;
            slot.model = Arc::new(replacement);
            slot.version
        };
        // Publish after the slot is consistent; SeqCst pairs with the
        // worker-side load so a worker seeing the new epoch also sees the
        // new slot contents under the mutex.
        self.shared.swap_epoch.fetch_add(1, Ordering::SeqCst);
        self.shared.stats.record_swap();
        if let Some(tel) = &self.shared.telemetry {
            tel.swaps_total.inc();
            tel.bundle.tracer.event(
                "serve.swap",
                &[
                    ("model", model.0.to_string()),
                    ("version", version.to_string()),
                ],
            );
        }
        Ok(version)
    }

    /// Current queue depth (requests accepted but not yet dispatched).
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.depth()
    }

    /// The bounded queue's capacity (admission-control limit).
    pub fn queue_capacity(&self) -> usize {
        self.shared.config.queue_capacity
    }

    /// The batching policy workers currently dispatch under (the builder's
    /// value until [`set_batch_policy`](Self::set_batch_policy) retunes it).
    pub fn batch_policy(&self) -> BatchPolicy {
        self.shared.batch.load()
    }

    /// Retunes the live batching policy (min 1 rider). Workers pick the
    /// new policy up at their next batch boundary; batches already being
    /// coalesced finish under the old one. Purely a scheduling knob —
    /// outputs and ledgers are bit-identical at every setting — which is
    /// what lets a governor widen coalescing under pressure without
    /// touching served results.
    pub fn set_batch_policy(&self, policy: BatchPolicy) {
        self.shared.batch.store(policy);
        // Wake coalescing workers so a shortened max_wait applies promptly.
        self.shared.queue.wake_all();
    }

    /// Sets (or with `None` clears) the admission quota of one model slot:
    /// while the slot has `quota` requests queued, further submits for it
    /// fail fast with [`RuntimeError::Throttled`]. Requests already queued
    /// are never dropped. A quota of 0 sheds the slot entirely.
    ///
    /// # Errors
    ///
    /// * [`RuntimeError::UnknownModel`] — `model` was never registered.
    pub fn set_queue_quota(
        &self,
        model: ModelId,
        quota: Option<usize>,
    ) -> Result<(), RuntimeError> {
        let cell = self
            .shared
            .quotas
            .get(model.0)
            .ok_or(RuntimeError::UnknownModel { id: model })?;
        cell.store(quota.unwrap_or(usize::MAX), Ordering::Relaxed);
        Ok(())
    }

    /// Queued-but-undispatched requests per model slot, in registration
    /// (id) order — the per-tenant pressure readout quota decisions are
    /// based on.
    pub fn queued_per_model(&self) -> Vec<usize> {
        self.shared.queue.per_model()
    }

    /// Liveness probe: `true` while the queue is open and every worker
    /// thread is running. A worker that panicked (or a runtime that began
    /// shutting down) turns the probe `false`, and a cluster router stops
    /// sending traffic here.
    pub fn healthy(&self) -> bool {
        if self.workers.is_empty() || self.workers.iter().any(|h| h.is_finished()) {
            return false;
        }
        !self.shared.queue.closed()
    }

    /// Current version of every serving slot, in registration (id) order
    /// (0 when registered, +1 per [`swap_model`](Self::swap_model)).
    pub fn model_versions(&self) -> Vec<u64> {
        self.shared
            .models
            .lock()
            .expect("model table lock")
            .iter()
            .map(|s| s.version)
            .collect()
    }

    /// Executor count of the shared intra-request compute pool.
    pub fn par_threads(&self) -> usize {
        self.shared.pool.threads()
    }

    /// The shared compute pool's inline-vs-dispatch cost threshold.
    pub fn spawn_threshold(&self) -> u64 {
        self.shared.pool.spawn_threshold()
    }

    /// A snapshot of the shared compute pool's activity counters
    /// (jobs dispatched, inline fallbacks, caller vs. worker task split).
    pub fn pool_counters(&self) -> PoolCounters {
        self.shared.pool.counters()
    }

    /// Enqueues one single-sample request (`[C, H, W]` or `[1, C, H, W]`)
    /// and returns a [`Ticket`] to wait on. Never blocks.
    ///
    /// # Errors
    ///
    /// * [`RuntimeError::UnknownModel`] — `model` was not registered.
    /// * [`RuntimeError::BadInput`] — shape mismatch (batched inputs are
    ///   rejected; batching is the runtime's job).
    /// * [`RuntimeError::QueueFull`] — backpressure; retry later.
    /// * [`RuntimeError::ShuttingDown`] — the runtime no longer accepts
    ///   work.
    pub fn submit(&self, model: ModelId, input: &Tensor) -> Result<Ticket, RuntimeError> {
        let expected = {
            let slots = self.shared.models.lock().expect("model table lock");
            let slot = slots
                .get(model.0)
                .ok_or(RuntimeError::UnknownModel { id: model })?;
            slot.model.input_shape().to_vec()
        };
        let expected = expected.as_slice();
        let shape = input.shape();
        let normalized = if shape == expected {
            let mut with_batch = vec![1];
            with_batch.extend_from_slice(shape);
            input
                .reshaped(with_batch)
                .expect("adding a unit batch axis preserves the element count")
        } else if shape.len() == 4 && shape[0] == 1 && &shape[1..] == expected {
            input.clone()
        } else {
            return Err(RuntimeError::BadInput {
                expected: expected.to_vec(),
                actual: shape.to_vec(),
            });
        };

        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = mpsc::channel();
        // Lock-free admission: one CAS reserves a depth slot (checking
        // closed and capacity atomically), a second CAS takes the model's
        // quota. Precedence matches the old locked queue exactly:
        // closed > capacity > quota.
        let quota = self.shared.quotas[model.0].load(Ordering::Relaxed);
        match self.shared.queue.try_admit(model.0, quota) {
            Ok(()) => {}
            Err(AdmitError::Closed) => return Err(RuntimeError::ShuttingDown),
            Err(AdmitError::Full) => {
                self.shared.stats.record_rejection();
                if let Some(tel) = &self.shared.telemetry {
                    tel.rejected_total.inc();
                }
                return Err(RuntimeError::QueueFull {
                    capacity: self.shared.config.queue_capacity,
                });
            }
            Err(AdmitError::Throttled) => {
                self.shared.stats.record_rejection();
                if let Some(tel) = &self.shared.telemetry {
                    tel.throttled_total.inc();
                }
                return Err(RuntimeError::Throttled { model, quota });
            }
        }
        self.shared.queue.publish(QueuedRequest {
            id,
            model,
            input: normalized,
            enqueued: Instant::now(),
            reply: tx,
        });
        if let Some(tel) = &self.shared.telemetry {
            tel.queue_depth.set(self.shared.queue.depth() as f64);
        }
        Ok(Ticket { request_id: id, rx })
    }

    /// Convenience: submit and block for the response.
    ///
    /// # Errors
    ///
    /// Propagates [`Runtime::submit`] errors, plus
    /// [`RuntimeError::Disconnected`] if the serving side hung up.
    pub fn infer(&self, model: ModelId, input: &Tensor) -> Result<InferResponse, RuntimeError> {
        self.submit(model, input)?.wait()
    }

    /// A point-in-time statistics snapshot.
    pub fn stats(&self) -> RuntimeStats {
        self.shared.stats.snapshot()
    }

    /// Graceful shutdown: stops accepting work, lets workers drain every
    /// in-flight request (all tickets get answers), joins the pool, and
    /// returns the final statistics.
    pub fn shutdown(mut self) -> RuntimeStats {
        self.close_and_join();
        self.shared.stats.snapshot()
    }

    fn close_and_join(&mut self) {
        // Atomically refuse all future admissions; requests already
        // admitted stay in the rings and workers drain them before
        // exiting (every outstanding ticket still gets an answer).
        self.shared.queue.close();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Runtime {
    fn drop(&mut self) {
        self.close_and_join();
    }
}

/// Per-worker staging buffers reused across batches: after warm-up a
/// worker stacks inputs and records queue waits without touching the
/// allocator (the PE branch's own scratch arenas live in its replica).
#[derive(Debug, Default)]
struct WorkerScratch {
    /// Row-major staging area the batch's input tensors are stacked into.
    staging: Vec<f32>,
    /// Per-rider queue waits for the stats ledger and responses.
    waits: Vec<Duration>,
}

fn worker_loop(shared: &Shared, replicas: &mut [(u64, ModelReplica)], worker: usize) {
    // Replicas were cloned before the first epoch read could race a swap,
    // so start from 0 and let the version check sort out staleness.
    let mut seen_epoch = 0;
    let mut scratch = WorkerScratch::default();
    while let Some((batch, formed)) = collect_batch(shared, worker) {
        refresh_replicas(shared, replicas, &mut seen_epoch);
        serve_batch(shared, replicas, batch, formed, &mut scratch);
    }
}

/// The RCU read-side grace period: at each batch boundary the worker
/// checks the swap epoch and, only if it moved, re-clones the replicas
/// whose slot version changed. Between boundaries a worker's replicas are
/// immutable-by-others, so a batch that started on the old model finishes
/// on it untouched.
fn refresh_replicas(shared: &Shared, replicas: &mut [(u64, ModelReplica)], seen_epoch: &mut u64) {
    let epoch = shared.swap_epoch.load(Ordering::SeqCst);
    if epoch == *seen_epoch {
        return;
    }
    let slots = shared.models.lock().expect("model table lock");
    for (slot, entry) in slots.iter().zip(replicas.iter_mut()) {
        if entry.0 != slot.version {
            *entry = (slot.version, slot.model.replica());
        }
    }
    *seen_epoch = epoch;
}

/// Pops a seed request and coalesces riders from the same model ring up
/// to `max_batch` / `max_wait`. Returns the batch paired with the instant
/// its seed was popped (start of batch formation), or `None` when the
/// queue is closed and fully drained.
///
/// Sharding the queue per model made compatibility structural: submit
/// normalizes every input to the model's exact `[1, C, H, W]` shape, so
/// the seed's own ring holds nothing but compatible riders — the old
/// O(queue) compatible-scan became a FIFO pop.
fn collect_batch(shared: &Shared, worker: usize) -> Option<(Vec<QueuedRequest>, Instant)> {
    loop {
        // Read the live policy at each seed attempt: retunes apply at the
        // next boundary, never mid-coalesce.
        let policy = shared.batch.load();
        // Stagger the seed scan by worker index so concurrent workers
        // start on different model rings instead of contending on one.
        if let Some(first) = shared.queue.pop_any(worker) {
            let model = first.model.index();
            let formed = Instant::now();
            let mut batch = vec![first];
            let deadline = formed + policy.max_wait;
            loop {
                while batch.len() < policy.max_batch {
                    match shared.queue.pop_model(model) {
                        Some(rider) => batch.push(rider),
                        None => break,
                    }
                }
                if batch.len() >= policy.max_batch || shared.queue.closed() {
                    break;
                }
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                // Park until a submit lands (or the batching deadline);
                // the pre-check inside `wait_for_work` closes the race
                // with a publish that beat the registration.
                shared
                    .queue
                    .wait_for_work((deadline - now).min(IDLE_POLL), || {
                        shared.queue.model_depth(model) > 0 || shared.queue.closed()
                    });
            }
            if let Some(tel) = &shared.telemetry {
                tel.queue_depth.set(shared.queue.depth() as f64);
            }
            return Some((batch, formed));
        }
        if shared.queue.closed() && shared.queue.depth() == 0 {
            return None;
        }
        // Idle: park on the single wake path. Timed regardless, so a
        // wakeup lost to the lock-free submit race costs one IDLE_POLL.
        shared.queue.wait_for_work(IDLE_POLL, || {
            shared.queue.depth() > 0 || shared.queue.closed()
        });
    }
}

fn serve_batch(
    shared: &Shared,
    replicas: &mut [(u64, ModelReplica)],
    batch: Vec<QueuedRequest>,
    formed: Instant,
    scratch: &mut WorkerScratch,
) {
    let dispatched = Instant::now();
    let model = batch[0].model;
    // Stack inputs directly into the worker's staging buffer (one copy,
    // no per-request clones) and lend it to a Tensor for the forward
    // pass; `compatible` guaranteed the riders share one shape.
    let mut data = std::mem::take(&mut scratch.staging);
    data.clear();
    let mut shape = batch[0].input.shape().to_vec();
    shape[0] = 0;
    for r in &batch {
        data.extend_from_slice(r.input.as_slice());
        shape[0] += r.input.shape()[0];
    }
    let stacked = Tensor::from_vec(shape, data).expect("riders share one shape");
    let replica = &mut replicas[model.0].1;
    let compute_started = Instant::now();
    let (logits, sim) = replica.infer_batch(&stacked);
    let compute = compute_started.elapsed();
    scratch.staging = stacked.into_vec();
    let preds = predictions(&logits);

    let size = batch.len();
    let classes = logits.shape()[1];
    let energy_share = sim.total_energy() / size as f64;
    scratch.waits.clear();
    scratch
        .waits
        .extend(batch.iter().map(|r| r.enqueued.elapsed()));
    // Count the batch before replying, so a client holding its response
    // is guaranteed to find it in the stats snapshot.
    shared
        .stats
        .record_batch(size, sim, scratch.waits.iter().sum::<Duration>());
    if let Some(tel) = &shared.telemetry {
        // Energy counters were already fed by the replica's attached
        // PeTelemetry inside `infer_batch`; here only the host-side
        // pipeline timings are recorded.
        tel.batch_size.observe(size as f64);
        tel.requests_total.add(size as f64);
        // Mirror the compute pool's cumulative activity: gauges take the
        // snapshot, the steal/park/split counters take the delta.
        tel.mirror_pool(&shared.pool.counters());
        tel.stage_batch_form
            .observe(dispatched.duration_since(formed).as_secs_f64());
        tel.stage_compute.observe(compute.as_secs_f64());
        for r in &batch {
            tel.stage_queue
                .observe(dispatched.duration_since(r.enqueued).as_secs_f64());
        }
    }
    let reply_started = Instant::now();
    for ((row, req), wait) in batch.into_iter().enumerate().zip(scratch.waits.drain(..)) {
        let response = InferResponse {
            request_id: req.id,
            logits: logits.as_slice()[row * classes..(row + 1) * classes].to_vec(),
            prediction: preds[row],
            batch_size: size,
            queue_wait: wait,
            latency: sim.busy_time,
            energy: energy_share,
        };
        // The client may have dropped its ticket; serving proceeds.
        let _ = req.reply.send(response);
        if let Some(tel) = &shared.telemetry {
            tel.bundle.tracer.record_span_ending_now(
                "serve.request",
                req.enqueued.elapsed(),
                &[
                    ("id", req.id.to_string()),
                    ("model", model.0.to_string()),
                    ("batch_size", size.to_string()),
                ],
            );
        }
    }
    if let Some(tel) = &shared.telemetry {
        tel.stage_reply
            .observe(reply_started.elapsed().as_secs_f64());
        tel.bundle.tracer.record_span_ending_now(
            "serve.batch",
            formed.elapsed(),
            &[
                ("model", model.0.to_string()),
                ("size", size.to_string()),
                ("energy_pj", format!("{:.3}", sim.total_energy().as_pj())),
            ],
        );
    }
}
