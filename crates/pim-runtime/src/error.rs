//! Typed failures of the serving runtime.

use crate::request::ModelId;
use pim_pe::PeError;
use std::fmt;

/// Why a runtime operation could not complete.
#[derive(Debug, Clone, PartialEq)]
pub enum RuntimeError {
    /// The bounded request queue is at capacity — backpressure. The
    /// caller should retry later or shed load; `submit` never blocks.
    QueueFull {
        /// The configured queue capacity.
        capacity: usize,
    },
    /// The runtime is shutting down and no longer accepts requests.
    ShuttingDown,
    /// The request named a model the runtime does not serve.
    UnknownModel {
        /// The offending handle.
        id: ModelId,
    },
    /// The request input does not match the model's expected shape.
    BadInput {
        /// Shape the compiled model was lowered for (`[C, H, W]`).
        expected: Vec<usize>,
        /// Shape the request carried.
        actual: Vec<usize>,
    },
    /// A hot swap offered a replacement model whose interface does not
    /// match the slot it targets. Clients keep their [`ModelId`] across
    /// swaps, so the replacement must accept the same inputs and emit the
    /// same number of classes.
    IncompatibleSwap {
        /// Input shape the serving slot was registered with (`[C, H, W]`).
        expected_input: Vec<usize>,
        /// Input shape the replacement expects.
        actual_input: Vec<usize>,
        /// Classifier outputs the serving slot was registered with.
        expected_classes: usize,
        /// Classifier outputs of the replacement.
        actual_classes: usize,
    },
    /// The request's model slot is over its per-model admission quota
    /// (set by [`Runtime::set_queue_quota`](crate::Runtime::set_queue_quota),
    /// typically by a governor throttling one tenant). The shared queue
    /// may still have room — only this slot is being held back.
    Throttled {
        /// The throttled slot.
        model: ModelId,
        /// Its current per-model quota.
        quota: usize,
    },
    /// The serving side hung up before answering (a worker panicked).
    Disconnected,
    /// Lowering a model onto the PEs failed.
    Compile(PeError),
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::QueueFull { capacity } => {
                write!(f, "request queue full (capacity {capacity})")
            }
            Self::ShuttingDown => write!(f, "runtime is shutting down"),
            Self::UnknownModel { id } => write!(f, "unknown model {id}"),
            Self::BadInput { expected, actual } => write!(
                f,
                "input shape {actual:?} does not match model input {expected:?}"
            ),
            Self::IncompatibleSwap {
                expected_input,
                actual_input,
                expected_classes,
                actual_classes,
            } => write!(
                f,
                "swap rejected: slot serves input {expected_input:?} -> {expected_classes} \
                 classes but replacement is {actual_input:?} -> {actual_classes}"
            ),
            Self::Throttled { model, quota } => {
                write!(f, "model {model} is over its admission quota ({quota})")
            }
            Self::Disconnected => write!(f, "worker disconnected before replying"),
            Self::Compile(e) => write!(f, "model failed to compile onto PEs: {e}"),
        }
    }
}

impl std::error::Error for RuntimeError {}

impl From<PeError> for RuntimeError {
    fn from(e: PeError) -> Self {
        Self::Compile(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_their_cause() {
        let e = RuntimeError::QueueFull { capacity: 4 };
        assert!(e.to_string().contains("capacity 4"));
        assert!(RuntimeError::ShuttingDown
            .to_string()
            .contains("shutting down"));
        let b = RuntimeError::BadInput {
            expected: vec![3, 8, 8],
            actual: vec![1, 8, 8],
        };
        assert!(b.to_string().contains("[3, 8, 8]"));
        let s = RuntimeError::IncompatibleSwap {
            expected_input: vec![3, 8, 8],
            actual_input: vec![3, 8, 8],
            expected_classes: 10,
            actual_classes: 7,
        };
        assert!(s.to_string().contains("swap rejected"));
        assert!(s.to_string().contains("-> 7"));
    }
}
