//! # pim-runtime — concurrent batched inference serving over the PEs
//!
//! The rest of the workspace answers "what does one forward pass cost on
//! the MRAM–SRAM hybrid?"; this crate answers "what does *serving* look
//! like?". It is a multi-threaded batch-serving engine built only on
//! `std` primitives (`std::thread`, `mpsc`, `Mutex`/`Condvar`):
//!
//! * **Compile once, serve many** — [`CompiledModel::compile`] lowers a
//!   trained `RepNet` through INT8 quantization, N:M CSC compression,
//!   and column tiling exactly once, caching the loaded SRAM PE tile
//!   programs for reuse across every subsequent request.
//! * **Sharded worker pool** — each worker thread owns a private
//!   [`replica`](CompiledModel) of every registered model (its own
//!   simulated PEs), so serving never contends on PE state; workers
//!   drain one shared bounded request queue.
//! * **Coalescing batcher** — compatible requests (same model, same
//!   shape) riding the queue together are merged into one PE batch, up
//!   to a [`BatchPolicy`] `max_batch` / `max_wait`. Batched results are
//!   bit-exact with sequential execution: the backbone runs in eval mode
//!   (BatchNorm running stats) and the PE path is per-sample
//!   independent.
//! * **Hot model swap** — [`Runtime::swap_model`] atomically publishes a
//!   replacement artifact into a serving slot (RCU-style): batches
//!   already collected finish on the old model, later batches see the
//!   new one, and clients keep their [`ModelId`] across the swap. This
//!   is the seam `pim-learn` uses to push continually-trained weights
//!   into live serving.
//! * **Backpressure & graceful shutdown** — a full queue makes
//!   [`Runtime::submit`] return [`RuntimeError::QueueFull`] immediately
//!   (it never blocks); [`Runtime::shutdown`] stops intake, drains every
//!   in-flight request so all tickets get answers, and joins the pool.
//! * **Accounting** — per-request and per-batch simulated latency,
//!   energy, and EDP from the `pim-device`/`pim-pe` cost models, rolled
//!   up into a [`RuntimeStats`] snapshot ([`Runtime::stats`]).
//! * **Telemetry** — [`RuntimeBuilder::telemetry`] attaches a shared
//!   [`Telemetry`] bundle: per-stage latency histograms
//!   (`queue`/`batch_form`/`compute`/`reply`), queue-depth and
//!   batch-size distributions, request/rejection/swap counters, a
//!   per-replica PE energy mirror (`source="serve"`), and
//!   per-request/batch/swap spans — Prometheus-renderable mid-run.
//!
//! See `examples/serving.rs` for an end-to-end tour and
//! `examples/telemetry.rs` for the instrumented one.

mod compiled;
mod engine;
mod error;
pub mod metrics;
mod queue;
mod request;
mod stats;
pub mod telemetry;

pub use compiled::CompiledModel;
pub use engine::{BatchPolicy, Runtime, RuntimeBuilder, RuntimeConfig, TunedDefaults};
pub use error::RuntimeError;
pub use metrics::LatencySummary;
pub use pim_par::PoolCounters;
pub use pim_telemetry::Telemetry;
pub use request::{InferResponse, ModelId, Ticket};
pub use stats::RuntimeStats;

#[cfg(test)]
mod tests {
    use super::*;
    use pim_nn::models::{Backbone, BackboneConfig, RepNet, RepNetConfig};
    use pim_nn::tensor::Tensor;
    use std::time::Duration;

    fn tiny_model() -> RepNet {
        tiny_model_seeded(11)
    }

    fn tiny_model_seeded(seed: u64) -> RepNet {
        RepNet::new(
            Backbone::new(BackboneConfig::tiny()),
            RepNetConfig {
                rep_channels: 4,
                num_classes: 5,
                seed,
            },
        )
    }

    #[test]
    fn compile_once_then_serve() {
        let model = tiny_model();
        let compiled = CompiledModel::compile("tiny", &model).expect("compile");
        assert!(compiled.tile_count() > 0);
        assert!(compiled.compile_stats().loads > 0);

        let mut builder = Runtime::builder().workers(2);
        let id = builder.register(compiled);
        let runtime = builder.start();
        let input = Tensor::ones(runtime.models()[0].input_shape());
        let response = runtime.infer(id, &input).expect("infer");
        assert_eq!(response.logits.len(), 5);
        assert!(response.prediction < 5);
        assert!(response.latency.as_ns() > 0.0);
        assert!(response.energy.as_pj() > 0.0);

        let stats = runtime.shutdown();
        assert_eq!(stats.requests_completed, 1);
        assert!(stats.total_energy.as_pj() > 0.0);
    }

    #[test]
    fn tuned_defaults_fill_unset_knobs_but_explicit_calls_win() {
        let tuned = TunedDefaults {
            workers: 2,
            par_threads: 3,
            max_batch: 4,
            queue_capacity: 99,
            spawn_threshold: 5,
        };
        // All knobs default to the tuned values (the pool width is
        // additionally clamped to the physically available cores).
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        let mut builder = Runtime::builder().tuned(tuned);
        let id = builder.register(CompiledModel::compile("tiny", &tiny_model()).expect("compile"));
        let runtime = builder.start();
        assert_eq!(runtime.par_threads(), 3.min(cores));
        assert_eq!(runtime.queue_capacity(), 99);
        assert_eq!(runtime.spawn_threshold(), 5);
        let input = Tensor::ones(runtime.models()[0].input_shape());
        let tuned_logits = runtime.infer(id, &input).expect("infer").logits;
        runtime.shutdown();

        // Explicit setters beat the tuned defaults even when `tuned()` is
        // chained afterwards — resolution happens at start().
        let mut builder = Runtime::builder()
            .queue_capacity(10)
            .par_threads(1)
            .spawn_threshold(7_000)
            .tuned(tuned);
        let id = builder.register(CompiledModel::compile("tiny", &tiny_model()).expect("compile"));
        let runtime = builder.start();
        assert_eq!(runtime.par_threads(), 1);
        assert_eq!(runtime.queue_capacity(), 10);
        assert_eq!(runtime.spawn_threshold(), 7_000);
        // Tuning knobs never change served results (determinism contract).
        let explicit_logits = runtime.infer(id, &input).expect("infer").logits;
        assert_eq!(tuned_logits, explicit_logits);
        runtime.shutdown();
    }

    #[test]
    fn submit_validates_model_and_shape() {
        let mut builder = Runtime::builder().workers(1);
        let id = builder.register(CompiledModel::compile("tiny", &tiny_model()).expect("compile"));
        let runtime = builder.start();

        let bad_model = ModelId(7);
        assert!(matches!(
            runtime.submit(bad_model, &Tensor::ones(&[1, 8, 8])),
            Err(RuntimeError::UnknownModel { .. })
        ));
        assert!(matches!(
            runtime.submit(id, &Tensor::ones(&[2, 8, 8])),
            Err(RuntimeError::BadInput { .. })
        ));
        // A [1, C, H, W] input with unit batch is accepted too.
        let shape = runtime.models()[0].input_shape().to_vec();
        let mut batched = vec![1];
        batched.extend_from_slice(&shape);
        assert!(runtime.submit(id, &Tensor::ones(&batched)).is_ok());
        runtime.shutdown();
    }

    #[test]
    fn hot_swap_serves_the_replacement_bit_exactly() {
        let compiled_a = CompiledModel::compile("v0", &tiny_model()).expect("compile a");
        let model_b = tiny_model_seeded(77);
        let compiled_b = CompiledModel::compile("v1", &model_b).expect("compile b");

        let mut builder = Runtime::builder().workers(1).max_wait(Duration::ZERO);
        let id = builder.register(compiled_a);
        let runtime = builder.start();
        let input = Tensor::ones(runtime.models()[0].input_shape());
        let before = runtime.infer(id, &input).expect("infer before swap");

        let version = runtime.swap_model(id, compiled_b.clone()).expect("swap");
        assert_eq!(version, 1);
        assert_eq!(runtime.models()[0].name(), "v1");

        let after = runtime.infer(id, &input).expect("infer after swap");
        assert_ne!(before.logits, after.logits, "replacement has new weights");

        // The served logits must be bit-exact with a cold replica of the
        // swapped-in artifact.
        let mut batched_shape = vec![1];
        batched_shape.extend_from_slice(input.shape());
        let batched = input.reshaped(batched_shape).expect("unit batch axis");
        let (reference, _) = compiled_b.replica().infer_batch(&batched);
        assert_eq!(after.logits, reference.as_slice().to_vec());

        let stats = runtime.shutdown();
        assert_eq!(stats.model_swaps, 1);
        assert_eq!(stats.requests_completed, 2);
    }

    #[test]
    fn swap_rejects_incompatible_and_unknown_models() {
        let mut builder = Runtime::builder().workers(1);
        let id = builder.register(CompiledModel::compile("tiny", &tiny_model()).expect("compile"));
        let runtime = builder.start();

        let wrong_classes = RepNet::new(
            Backbone::new(BackboneConfig::tiny()),
            RepNetConfig {
                rep_channels: 4,
                num_classes: 7,
                seed: 3,
            },
        );
        let wrong = CompiledModel::compile("wrong", &wrong_classes).expect("compile");
        assert!(matches!(
            runtime.swap_model(id, wrong.clone()),
            Err(RuntimeError::IncompatibleSwap {
                expected_classes: 5,
                actual_classes: 7,
                ..
            })
        ));
        assert!(matches!(
            runtime.swap_model(ModelId(9), wrong),
            Err(RuntimeError::UnknownModel { .. })
        ));
        assert_eq!(runtime.stats().model_swaps, 0);
        runtime.shutdown();
    }

    #[test]
    fn queue_quota_throttles_one_slot_and_clears() {
        let mut builder = Runtime::builder().workers(1);
        let id_a = builder.register(CompiledModel::compile("a", &tiny_model()).expect("compile"));
        let id_b =
            builder.register(CompiledModel::compile("b", &tiny_model_seeded(7)).expect("compile"));
        let runtime = builder.start();
        let input = Tensor::ones(runtime.models()[0].input_shape());

        assert!(matches!(
            runtime.set_queue_quota(ModelId(9), Some(1)),
            Err(RuntimeError::UnknownModel { .. })
        ));
        // Quota 0 sheds slot A outright; slot B is untouched.
        runtime.set_queue_quota(id_a, Some(0)).expect("known slot");
        assert!(matches!(
            runtime.submit(id_a, &input),
            Err(RuntimeError::Throttled { quota: 0, .. })
        ));
        let ok = runtime.infer(id_b, &input).expect("slot b unaffected");
        assert_eq!(ok.logits.len(), 5);
        // Clearing the quota re-admits slot A.
        runtime.set_queue_quota(id_a, None).expect("known slot");
        runtime.infer(id_a, &input).expect("slot a re-admitted");
        assert_eq!(runtime.queued_per_model(), vec![0, 0], "queue drained");
        let stats = runtime.shutdown();
        assert_eq!(stats.requests_rejected, 1, "throttle counts as rejection");
    }

    #[test]
    fn batch_policy_retunes_live_without_changing_results() {
        let mut builder = Runtime::builder().workers(1).max_wait(Duration::ZERO);
        let id = builder.register(CompiledModel::compile("tiny", &tiny_model()).expect("compile"));
        let runtime = builder.start();
        let input = Tensor::ones(runtime.models()[0].input_shape());
        let before = runtime.infer(id, &input).expect("infer before");

        let wide = BatchPolicy {
            max_batch: 32,
            max_wait: Duration::from_millis(1),
        };
        runtime.set_batch_policy(wide);
        assert_eq!(runtime.batch_policy(), wide);
        let after = runtime.infer(id, &input).expect("infer after");
        assert_eq!(before.logits, after.logits, "batching is result-neutral");
        runtime.shutdown();
    }

    #[test]
    fn submit_after_shutdown_is_rejected() {
        let mut builder = Runtime::builder().workers(1).max_wait(Duration::ZERO);
        let id = builder.register(CompiledModel::compile("tiny", &tiny_model()).expect("compile"));
        let runtime = builder.start();
        let input = Tensor::ones(runtime.models()[0].input_shape());
        // Drop uses the same close path as shutdown; rebuild to test the
        // explicit closed-queue error via a second runtime handle.
        let _ = runtime.infer(id, &input).expect("infer");
        let stats = runtime.stats();
        assert!(stats.requests_completed >= 1);
        runtime.shutdown();
    }
}
