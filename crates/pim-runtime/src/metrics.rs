//! Shared latency-distribution summaries.
//!
//! Both the serving ledger ([`RuntimeStats`](crate::RuntimeStats)) and the
//! continual-learning ledger (`pim-learn`'s `LearnStats`) report the same
//! few-number view of a sample distribution — p50 / p95 / p99 / mean — so
//! the summarization lives here once instead of being re-derived per crate.
//!
//! # Percentile convention
//!
//! All percentiles use the **nearest-rank** definition: the p-th
//! percentile of `n` sorted samples is the sample at 1-indexed rank
//! `⌈p·n⌉` (clamped to `[1, n]`, so `p = 0` yields the minimum and
//! `p = 1` the maximum). It always returns an actual sample — never an
//! interpolated value — and behaves sensibly on small sample sets: with a
//! single sample every percentile *is* that sample, and p99 of fewer than
//! 100 samples is the maximum rather than an extrapolation.
//!
//! # Empty distributions
//!
//! An **empty** sample set has no sample to return, so every field —
//! p50, p95, p99, and mean — is defined to be exactly `0.0` ns (and
//! `samples == 0` flags that the zeros mean "no data", not "instant").
//! Callers render summaries before any traffic has arrived (e.g. a
//! runtime stats snapshot taken right after start-up), and an explicit
//! all-zero summary beats an `Option` at every call site.

use pim_device::Latency;
use std::fmt;

/// p50 / p95 / p99 / mean of a set of simulated-latency samples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySummary {
    /// How many samples went into the summary.
    pub samples: u64,
    /// Median sample (nearest-rank).
    pub p50: Latency,
    /// 95th-percentile sample (nearest-rank).
    pub p95: Latency,
    /// 99th-percentile sample (nearest-rank).
    pub p99: Latency,
    /// Arithmetic mean.
    pub mean: Latency,
}

impl LatencySummary {
    /// The all-zero summary of an empty distribution.
    pub fn empty() -> Self {
        Self {
            samples: 0,
            p50: Latency::from_ns(0.0),
            p95: Latency::from_ns(0.0),
            p99: Latency::from_ns(0.0),
            mean: Latency::from_ns(0.0),
        }
    }

    /// Summarizes raw nanosecond samples (any order; non-finite values are
    /// not expected and panic during sorting).
    pub fn from_ns(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return Self::empty();
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("latency samples are finite"));
        let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
        Self {
            samples: sorted.len() as u64,
            p50: Latency::from_ns(percentile_sorted(&sorted, 0.50)),
            p95: Latency::from_ns(percentile_sorted(&sorted, 0.95)),
            p99: Latency::from_ns(percentile_sorted(&sorted, 0.99)),
            mean: Latency::from_ns(mean),
        }
    }
}

impl fmt::Display for LatencySummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "p50 {} p95 {} p99 {} mean {}",
            self.p50, self.p95, self.p99, self.mean
        )
    }
}

/// Nearest-rank percentile of an already-sorted sample set; `p` in
/// `[0, 1]`. Returns the sample at 1-indexed rank `⌈p·n⌉`, clamped to
/// `[1, n]` (see the module docs for why), or 0 for an empty set.
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let n = sorted.len();
    let rank = (p * n as f64).ceil() as usize;
    sorted[rank.clamp(1, n) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_is_all_zero() {
        // The documented n = 0 convention: every percentile is exactly
        // 0.0 ns, not NaN, not a panic, not an Option.
        let s = LatencySummary::from_ns(&[]);
        assert_eq!(s, LatencySummary::empty());
        assert_eq!(s.samples, 0);
        assert_eq!(s.p50, Latency::from_ns(0.0));
        assert_eq!(s.p95, Latency::from_ns(0.0));
        assert_eq!(s.p99, Latency::from_ns(0.0));
        assert_eq!(s.mean, Latency::from_ns(0.0));
        assert_eq!(percentile_sorted(&[], 0.0), 0.0);
        assert_eq!(percentile_sorted(&[], 1.0), 0.0);
    }

    #[test]
    fn summary_matches_hand_computed_percentiles() {
        // Unsorted on purpose.
        let s = LatencySummary::from_ns(&[300.0, 100.0, 100.0, 100.0]);
        assert_eq!(s.samples, 4);
        assert_eq!(s.p50, Latency::from_ns(100.0));
        assert_eq!(s.p99, Latency::from_ns(300.0));
        assert_eq!(s.mean, Latency::from_ns(150.0));
        assert!(s.to_string().contains("p50"));
        assert!(s.to_string().contains("p95"));
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let sorted = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile_sorted(&sorted, 0.0), 1.0);
        assert_eq!(percentile_sorted(&sorted, 0.5), 3.0);
        assert_eq!(percentile_sorted(&sorted, 1.0), 5.0);
        assert_eq!(percentile_sorted(&[], 0.5), 0.0);
    }

    #[test]
    fn single_sample_is_every_percentile() {
        let s = LatencySummary::from_ns(&[42.0]);
        assert_eq!(s.samples, 1);
        assert_eq!(s.p50, Latency::from_ns(42.0));
        assert_eq!(s.p95, Latency::from_ns(42.0));
        assert_eq!(s.p99, Latency::from_ns(42.0));
        assert_eq!(s.mean, Latency::from_ns(42.0));
    }

    #[test]
    fn two_samples_put_the_median_on_the_lower_one() {
        // Nearest-rank: rank ⌈0.5·2⌉ = 1 → the smaller sample, not the
        // larger or an interpolated midpoint.
        let s = LatencySummary::from_ns(&[200.0, 100.0]);
        assert_eq!(s.p50, Latency::from_ns(100.0));
        assert_eq!(s.p95, Latency::from_ns(200.0));
        assert_eq!(s.p99, Latency::from_ns(200.0));
        assert_eq!(s.mean, Latency::from_ns(150.0));
    }

    #[test]
    fn four_samples_pin_all_ranks() {
        let s = LatencySummary::from_ns(&[40.0, 10.0, 30.0, 20.0]);
        // ⌈0.50·4⌉ = 2 → 20, ⌈0.95·4⌉ = 4 → 40, ⌈0.99·4⌉ = 4 → 40.
        assert_eq!(s.p50, Latency::from_ns(20.0));
        assert_eq!(s.p95, Latency::from_ns(40.0));
        assert_eq!(s.p99, Latency::from_ns(40.0));
    }

    #[test]
    fn hundred_samples_hit_the_exact_ranks() {
        // 1..=100 shuffled deterministically; nearest-rank of p on n=100
        // is exactly the value 100·p.
        let samples: Vec<f64> = (0..100).map(|i| ((i * 37) % 100 + 1) as f64).collect();
        let s = LatencySummary::from_ns(&samples);
        assert_eq!(s.samples, 100);
        assert_eq!(s.p50, Latency::from_ns(50.0));
        assert_eq!(s.p95, Latency::from_ns(95.0));
        assert_eq!(s.p99, Latency::from_ns(99.0));
        assert_eq!(s.mean, Latency::from_ns(50.5));
    }
}
