//! Lock-free sharded admission queue.
//!
//! Replaces the global `Mutex<VecDeque>` on the submit path: admission is
//! one CAS on a packed `closed|depth` word (capacity and shutdown checked
//! atomically, so the accepted/rejected ledger conserves even against a
//! racing close), per-model quotas are CAS loops on plain counters, and
//! accepted requests land in per-model bounded MPMC rings — Vyukov-style
//! sequence-numbered slots, multi-producer (any submitting thread) and
//! multi-consumer (any serving worker).
//!
//! Sharding is **per model**, not per worker: `submit` normalizes every
//! input to the model's exact `[1, C, H, W]` shape, so two requests for
//! one model are always batch-compatible. A worker that pops a seed from
//! a model's ring can therefore take riders from the *same ring's head*
//! with plain FIFO pops — no compatibility scan over a mixed queue, and no
//! risk of incompatible requests stranding in a worker-private shard.
//!
//! Waiting stays on a single condvar wake path: submitters notify only
//! when `sleepers` says a worker is actually parked, and workers always
//! wait *timed* (bounded by the batching deadline or a poll quantum), so
//! a theoretically lost wakeup costs latency, never liveness.

use crate::request::QueuedRequest;
use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// High bit of the packed admission word: the queue is closed.
const CLOSED: u64 = 1 << 63;
/// Low bits: accepted-but-undispatched request count.
const DEPTH: u64 = CLOSED - 1;

/// Why an admission was refused, in the same precedence order the old
/// locked queue checked: closed, then capacity, then per-model quota.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum AdmitError {
    Closed,
    Full,
    Throttled,
}

/// One slot of a [`Ring`]: a sequence number gating ownership plus the
/// payload cell it guards.
struct Slot {
    /// Vyukov sequencing: `seq == pos` → free for the push claiming `pos`;
    /// `seq == pos + 1` → holds the value pushed at `pos`, free for the
    /// pop claiming `pos`; after that pop, `seq = pos + capacity`.
    seq: AtomicUsize,
    value: UnsafeCell<MaybeUninit<QueuedRequest>>,
}

/// A bounded multi-producer multi-consumer FIFO ring (Vyukov's design,
/// std-only). Capacity is a power of two, at least the admission
/// capacity, so a push that passed admission can never find the ring full
/// — `push` spins only on the sub-microsecond window between a competing
/// push's claim and its publish.
struct Ring {
    mask: usize,
    /// Next pop position.
    head: AtomicUsize,
    /// Next push position.
    tail: AtomicUsize,
    slots: Box<[Slot]>,
}

// SAFETY: slots transfer `QueuedRequest` values between threads with the
// seq acquire/release handshake providing the necessary ordering; the
// payload type only needs to be Send (it is: tensors, instants, and an
// mpsc::Sender).
unsafe impl Send for Ring {}
unsafe impl Sync for Ring {}

impl Ring {
    fn new(capacity: usize) -> Self {
        let capacity = capacity.max(2).next_power_of_two();
        Self {
            mask: capacity - 1,
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
            slots: (0..capacity)
                .map(|i| Slot {
                    seq: AtomicUsize::new(i),
                    value: UnsafeCell::new(MaybeUninit::uninit()),
                })
                .collect(),
        }
    }

    /// Enqueues `value`. The caller must hold an admission reservation
    /// (global depth < capacity ≤ ring capacity), which rules out a full
    /// ring; the only spin is racing another push's claim/publish window.
    fn push(&self, value: QueuedRequest) {
        let mut pos = self.tail.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            if seq == pos
                && self
                    .tail
                    .compare_exchange_weak(pos, pos + 1, Ordering::Relaxed, Ordering::Relaxed)
                    .is_ok()
            {
                // SAFETY: winning the tail CAS at `pos` gives exclusive
                // write access to this slot until `seq` is bumped.
                unsafe { (*slot.value.get()).write(value) };
                slot.seq.store(pos + 1, Ordering::Release);
                return;
            }
            std::hint::spin_loop();
            pos = self.tail.load(Ordering::Relaxed);
        }
    }

    /// Dequeues the oldest published request, or `None` when the ring has
    /// no *published* entries (a claimed-but-unpublished push reads as
    /// empty; callers treat global depth as the liveness signal and
    /// re-poll).
    fn pop(&self) -> Option<QueuedRequest> {
        let mut pos = self.head.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            let published = pos.wrapping_add(1);
            if seq == published {
                if self
                    .head
                    .compare_exchange_weak(pos, pos + 1, Ordering::Relaxed, Ordering::Relaxed)
                    .is_ok()
                {
                    // SAFETY: winning the head CAS at `pos` gives exclusive
                    // read access to the value published at `pos`.
                    let value = unsafe { (*slot.value.get()).assume_init_read() };
                    slot.seq
                        .store(pos.wrapping_add(self.mask + 1), Ordering::Release);
                    return Some(value);
                }
                pos = self.head.load(Ordering::Relaxed);
            } else if seq < published {
                return None;
            } else {
                pos = self.head.load(Ordering::Relaxed);
            }
        }
    }
}

impl Drop for Ring {
    fn drop(&mut self) {
        // Drop any undelivered requests so their reply senders disconnect.
        while self.pop().is_some() {}
    }
}

/// The admission queue: packed atomic admission state, per-model rings,
/// and the single condvar workers park on.
pub(crate) struct AdmissionQueue {
    /// `CLOSED | depth`: one word so admission observes capacity and
    /// shutdown atomically.
    state: AtomicU64,
    capacity: usize,
    rings: Vec<Ring>,
    /// Accepted-but-undispatched requests per model (quota + pressure
    /// readout), kept in lockstep with the rings.
    per_model: Vec<AtomicUsize>,
    /// Workers currently parked on `available` (submitters skip the
    /// notify entirely while this is zero).
    sleepers: AtomicUsize,
    wake: Mutex<()>,
    available: Condvar,
}

impl AdmissionQueue {
    pub(crate) fn new(capacity: usize, models: usize) -> Self {
        Self {
            state: AtomicU64::new(0),
            capacity: capacity.max(1),
            rings: (0..models).map(|_| Ring::new(capacity.max(1))).collect(),
            per_model: (0..models).map(|_| AtomicUsize::new(0)).collect(),
            sleepers: AtomicUsize::new(0),
            wake: Mutex::new(()),
            available: Condvar::new(),
        }
    }

    /// Reserves one admission slot for `model`, enforcing (in order)
    /// closed, global capacity, and the model's quota. On success the
    /// caller **must** follow with [`publish`](Self::publish); depth and
    /// the per-model count already include the reservation.
    pub(crate) fn try_admit(&self, model: usize, quota: usize) -> Result<(), AdmitError> {
        let mut state = self.state.load(Ordering::SeqCst);
        loop {
            if state & CLOSED != 0 {
                return Err(AdmitError::Closed);
            }
            if (state & DEPTH) as usize >= self.capacity {
                return Err(AdmitError::Full);
            }
            match self.state.compare_exchange_weak(
                state,
                state + 1,
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(_) => break,
                Err(cur) => state = cur,
            }
        }
        let count = &self.per_model[model];
        let mut queued = count.load(Ordering::Relaxed);
        loop {
            if queued >= quota {
                // Roll the depth reservation back; the request was never
                // visible to workers.
                self.state.fetch_sub(1, Ordering::SeqCst);
                return Err(AdmitError::Throttled);
            }
            match count.compare_exchange_weak(
                queued,
                queued + 1,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Ok(()),
                Err(cur) => queued = cur,
            }
        }
    }

    /// Publishes an admitted request into its model's ring and wakes a
    /// parked worker if any.
    pub(crate) fn publish(&self, request: QueuedRequest) {
        let model = request.model.index();
        self.rings[model].push(request);
        if self.sleepers.load(Ordering::SeqCst) > 0 {
            // Lock-then-notify pairs with the workers' register-then-check
            // parking protocol; see `wait_for_work`.
            let _guard = self.wake.lock().expect("queue wake lock");
            self.available.notify_all();
        }
    }

    /// Pops a seed request, scanning the model rings round-robin from
    /// `start` so no model starves behind a busy neighbour.
    pub(crate) fn pop_any(&self, start: usize) -> Option<QueuedRequest> {
        let models = self.rings.len();
        for k in 0..models {
            let m = (start + k) % models;
            if let Some(req) = self.rings[m].pop() {
                self.per_model[m].fetch_sub(1, Ordering::AcqRel);
                self.state.fetch_sub(1, Ordering::SeqCst);
                return Some(req);
            }
        }
        None
    }

    /// Pops the oldest queued request of one model (batch riders).
    pub(crate) fn pop_model(&self, model: usize) -> Option<QueuedRequest> {
        let req = self.rings[model].pop()?;
        self.per_model[model].fetch_sub(1, Ordering::AcqRel);
        self.state.fetch_sub(1, Ordering::SeqCst);
        Some(req)
    }

    /// Accepted-but-undispatched request count.
    pub(crate) fn depth(&self) -> usize {
        (self.state.load(Ordering::SeqCst) & DEPTH) as usize
    }

    /// Queued requests for one model (includes reservations whose publish
    /// is still in flight).
    pub(crate) fn model_depth(&self, model: usize) -> usize {
        self.per_model[model].load(Ordering::Relaxed)
    }

    /// Per-model queued counts, in registration order.
    pub(crate) fn per_model(&self) -> Vec<usize> {
        self.per_model
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    pub(crate) fn closed(&self) -> bool {
        self.state.load(Ordering::SeqCst) & CLOSED != 0
    }

    /// Atomically stops all future admissions and wakes every parked
    /// worker. Requests admitted before the close stay queued (depth > 0)
    /// and will be drained.
    pub(crate) fn close(&self) {
        self.state.fetch_or(CLOSED, Ordering::SeqCst);
        self.wake_all();
    }

    /// Wakes every parked worker (policy retunes, shutdown).
    pub(crate) fn wake_all(&self) {
        let _guard = self.wake.lock().expect("queue wake lock");
        self.available.notify_all();
    }

    /// Parks until woken or `timeout`, unless `has_work` already holds.
    /// The sleeper registers **before** checking, and submitters that see
    /// the registration notify under the same lock the check runs under —
    /// so a publish racing the check either flips `has_work` or finds the
    /// sleeper. Timed regardless, so any residual race costs one timeout.
    pub(crate) fn wait_for_work(&self, timeout: Duration, has_work: impl Fn() -> bool) {
        self.sleepers.fetch_add(1, Ordering::SeqCst);
        let guard = self.wake.lock().expect("queue wake lock");
        if !has_work() {
            drop(
                self.available
                    .wait_timeout(guard, timeout)
                    .expect("queue wake lock"),
            );
        } else {
            drop(guard);
        }
        self.sleepers.fetch_sub(1, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::ModelId;
    use pim_nn::tensor::Tensor;
    use std::sync::atomic::AtomicU64 as StdAtomicU64;
    use std::sync::{mpsc, Arc};
    use std::time::Instant;

    fn req(model: usize, id: u64) -> (QueuedRequest, mpsc::Receiver<crate::InferResponse>) {
        let (tx, rx) = mpsc::channel();
        (
            QueuedRequest {
                id,
                model: ModelId::from_index(model),
                input: Tensor::ones(&[1, 1, 2, 2]),
                enqueued: Instant::now(),
                reply: tx,
            },
            rx,
        )
    }

    #[test]
    fn admission_enforces_capacity_then_quota_then_close() {
        let q = AdmissionQueue::new(2, 2);
        assert_eq!(q.try_admit(0, usize::MAX), Ok(()));
        assert_eq!(q.try_admit(1, usize::MAX), Ok(()));
        assert_eq!(q.try_admit(0, usize::MAX), Err(AdmitError::Full));
        // Quota failures roll the depth reservation back.
        let q2 = AdmissionQueue::new(8, 1);
        assert_eq!(q2.try_admit(0, 0), Err(AdmitError::Throttled));
        assert_eq!(q2.depth(), 0);
        q2.close();
        assert_eq!(q2.try_admit(0, usize::MAX), Err(AdmitError::Closed));
    }

    #[test]
    fn rings_are_fifo_per_model_and_rotation_is_fair() {
        let q = AdmissionQueue::new(8, 2);
        for (model, id) in [(0, 0), (0, 1), (1, 2)] {
            q.try_admit(model, usize::MAX).unwrap();
            q.publish(req(model, id).0);
        }
        assert_eq!(q.depth(), 3);
        assert_eq!(q.per_model(), vec![2, 1]);
        // Seed scan starting at model 1 takes model 1's head first.
        assert_eq!(q.pop_any(1).unwrap().id, 2);
        // Model-0 riders come out in submit order.
        assert_eq!(q.pop_model(0).unwrap().id, 0);
        assert_eq!(q.pop_model(0).unwrap().id, 1);
        assert_eq!(q.pop_model(0).map(|r| r.id), None);
        assert_eq!(q.depth(), 0);
    }

    #[test]
    fn dropping_the_queue_disconnects_undelivered_tickets() {
        let q = AdmissionQueue::new(4, 1);
        q.try_admit(0, usize::MAX).unwrap();
        let (r, rx) = req(0, 9);
        q.publish(r);
        drop(q);
        assert!(rx.recv().is_err(), "sender dropped with the ring");
    }

    #[test]
    fn concurrent_floods_conserve_depth_exactly() {
        // N submitters × M drainers against one tiny queue: accepted ==
        // drained, depth returns to zero, rejections never go negative.
        let q = Arc::new(AdmissionQueue::new(16, 3));
        let accepted = Arc::new(StdAtomicU64::new(0));
        let drained = Arc::new(StdAtomicU64::new(0));
        let submitters: Vec<_> = (0..4)
            .map(|s| {
                let q = Arc::clone(&q);
                let accepted = Arc::clone(&accepted);
                std::thread::spawn(move || {
                    for i in 0..200u64 {
                        let model = ((s + i) % 3) as usize;
                        if q.try_admit(model, usize::MAX).is_ok() {
                            q.publish(req(model, i).0);
                            accepted.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                })
            })
            .collect();
        let drainers: Vec<_> = (0..2)
            .map(|d| {
                let q = Arc::clone(&q);
                let drained = Arc::clone(&drained);
                std::thread::spawn(move || loop {
                    match q.pop_any(d) {
                        Some(_) => {
                            drained.fetch_add(1, Ordering::SeqCst);
                        }
                        None => {
                            if q.closed() && q.depth() == 0 {
                                return;
                            }
                            std::hint::spin_loop();
                        }
                    }
                })
            })
            .collect();
        for s in submitters {
            s.join().unwrap();
        }
        q.close();
        for d in drainers {
            d.join().unwrap();
        }
        assert_eq!(
            accepted.load(Ordering::SeqCst),
            drained.load(Ordering::SeqCst),
            "every admitted request drained exactly once"
        );
        assert_eq!(q.depth(), 0);
        assert_eq!(q.per_model(), vec![0, 0, 0]);
    }
}
