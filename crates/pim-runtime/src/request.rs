//! Requests, responses, and the ticket a client waits on.

use crate::error::RuntimeError;
use pim_device::{Energy, Latency};
use pim_nn::tensor::Tensor;
use std::fmt;
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// Handle to a model registered with the runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ModelId(pub(crate) usize);

impl ModelId {
    /// Position in registration order.
    ///
    /// Registration order is the cross-runtime coordination key: fleets
    /// that register the same models in the same order share handles.
    pub fn index(&self) -> usize {
        self.0
    }

    /// Rebuilds a handle from a registration index — for coordinators
    /// (e.g. a cluster) that mirror the same registration order across
    /// several runtimes. A forged index is harmless: the runtime answers
    /// [`UnknownModel`](crate::RuntimeError::UnknownModel) for any id it
    /// never registered.
    pub fn from_index(index: usize) -> Self {
        ModelId(index)
    }
}

impl fmt::Display for ModelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "model#{}", self.0)
    }
}

/// One queued inference request (internal).
#[derive(Debug)]
pub(crate) struct QueuedRequest {
    pub id: u64,
    pub model: ModelId,
    /// Normalized to `[1, C, H, W]`.
    pub input: Tensor,
    pub enqueued: Instant,
    pub reply: mpsc::Sender<InferResponse>,
}

/// The answer to one request, with its share of the batch's cost.
#[derive(Debug, Clone, PartialEq)]
pub struct InferResponse {
    /// The id `submit` returned for this request.
    pub request_id: u64,
    /// Raw classifier outputs for this sample.
    pub logits: Vec<f32>,
    /// Argmax class.
    pub prediction: usize,
    /// How many requests rode in the same PE batch.
    pub batch_size: usize,
    /// Wall-clock time the request sat in the queue plus compute.
    pub queue_wait: Duration,
    /// Simulated PE latency of the whole batch (every rider completes
    /// when its batch completes).
    pub latency: Latency,
    /// This request's share (1/batch) of the batch's simulated energy.
    pub energy: Energy,
}

/// A claim on a future [`InferResponse`].
#[derive(Debug)]
pub struct Ticket {
    pub(crate) request_id: u64,
    pub(crate) rx: mpsc::Receiver<InferResponse>,
}

impl Ticket {
    /// The id the response will carry.
    pub fn id(&self) -> u64 {
        self.request_id
    }

    /// Blocks until the response arrives.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Disconnected`] if the serving side hung up
    /// (a worker panicked) before answering.
    pub fn wait(self) -> Result<InferResponse, RuntimeError> {
        self.rx.recv().map_err(|_| RuntimeError::Disconnected)
    }

    /// Returns the response if it is already available.
    pub fn try_wait(&self) -> Option<InferResponse> {
        self.rx.try_recv().ok()
    }
}
