//! Runtime-wide accounting and the snapshot clients read.

use crate::metrics::LatencySummary;
use pim_device::{edp, Energy, Latency};
use pim_pe::PeStats;
use std::fmt;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Thread-safe accumulator the workers and `submit` write into.
#[derive(Debug)]
pub(crate) struct StatsCollector {
    inner: Mutex<Inner>,
}

#[derive(Debug)]
struct Inner {
    completed: u64,
    rejected: u64,
    batches: u64,
    batch_size_sum: u64,
    max_batch_size: usize,
    model_swaps: u64,
    /// Aggregate simulated PE ledger across all batches.
    sim: PeStats,
    /// Per-request simulated latency samples (ns).
    latencies_ns: Vec<f64>,
    queue_wait_sum: Duration,
    started: Instant,
}

impl StatsCollector {
    pub fn new() -> Self {
        Self {
            inner: Mutex::new(Inner {
                completed: 0,
                rejected: 0,
                batches: 0,
                batch_size_sum: 0,
                max_batch_size: 0,
                model_swaps: 0,
                sim: PeStats::new(),
                latencies_ns: Vec::new(),
                queue_wait_sum: Duration::ZERO,
                started: Instant::now(),
            }),
        }
    }

    /// Records one served batch: its size, PE ledger, and the wall-clock
    /// queue waits of its riders.
    pub fn record_batch(&self, size: usize, sim: PeStats, queue_waits: Duration) {
        let mut g = self.inner.lock().expect("stats lock");
        g.completed += size as u64;
        g.batches += 1;
        g.batch_size_sum += size as u64;
        g.max_batch_size = g.max_batch_size.max(size);
        g.sim += sim;
        // Every rider experiences the whole batch's simulated latency.
        let ns = sim.busy_time.as_ns();
        g.latencies_ns.extend(std::iter::repeat_n(ns, size));
        g.queue_wait_sum += queue_waits;
    }

    /// Records one backpressure rejection.
    pub fn record_rejection(&self) {
        self.inner.lock().expect("stats lock").rejected += 1;
    }

    /// Records one hot model swap.
    pub fn record_swap(&self) {
        self.inner.lock().expect("stats lock").model_swaps += 1;
    }

    /// A consistent point-in-time snapshot.
    pub fn snapshot(&self) -> RuntimeStats {
        let g = self.inner.lock().expect("stats lock");
        let latency = LatencySummary::from_ns(&g.latencies_ns);
        RuntimeStats {
            latency_samples_ns: g.latencies_ns.clone(),
            requests_completed: g.completed,
            requests_rejected: g.rejected,
            batches: g.batches,
            model_swaps: g.model_swaps,
            mean_batch_size: if g.batches == 0 {
                0.0
            } else {
                g.batch_size_sum as f64 / g.batches as f64
            },
            max_batch_size: g.max_batch_size,
            p50_latency: latency.p50,
            p99_latency: latency.p99,
            mean_latency: latency.mean,
            total_energy: g.sim.total_energy(),
            simulated_busy: g.sim.busy_time,
            edp: edp(g.sim.total_energy(), g.sim.busy_time),
            macs: g.sim.macs,
            pe_matvecs: g.sim.matvecs,
            mean_queue_wait: if g.completed == 0 {
                Duration::ZERO
            } else {
                g.queue_wait_sum / g.completed as u32
            },
            wall_elapsed: g.started.elapsed(),
        }
    }
}

/// Point-in-time view of everything the runtime has served.
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimeStats {
    /// Requests answered.
    pub requests_completed: u64,
    /// Requests refused with [`QueueFull`](crate::RuntimeError::QueueFull).
    pub requests_rejected: u64,
    /// PE batches dispatched.
    pub batches: u64,
    /// Hot model swaps published into the serving path.
    pub model_swaps: u64,
    /// Mean riders per batch.
    pub mean_batch_size: f64,
    /// Largest batch dispatched.
    pub max_batch_size: usize,
    /// Median per-request simulated latency.
    pub p50_latency: Latency,
    /// 99th-percentile per-request simulated latency.
    pub p99_latency: Latency,
    /// Mean per-request simulated latency.
    pub mean_latency: Latency,
    /// Total simulated energy across all batches.
    pub total_energy: Energy,
    /// Total simulated PE busy time (summed across workers).
    pub simulated_busy: Latency,
    /// Energy-delay product (pJ·ns) of the aggregate ledger.
    pub edp: f64,
    /// Total MACs executed on the PEs.
    pub macs: u64,
    /// Total PE matvec operations.
    pub pe_matvecs: u64,
    /// Mean wall-clock time from submit to response.
    pub mean_queue_wait: Duration,
    /// Wall-clock time since the runtime started.
    pub wall_elapsed: Duration,
    /// The raw per-request simulated latency samples (ns) behind the
    /// percentiles — carried so roll-ups can **merge** snapshots exactly
    /// instead of approximating percentiles from percentiles.
    pub latency_samples_ns: Vec<f64>,
}

impl RuntimeStats {
    /// Wall-clock requests per second since start.
    pub fn throughput_rps(&self) -> f64 {
        let s = self.wall_elapsed.as_secs_f64();
        if s == 0.0 {
            0.0
        } else {
            self.requests_completed as f64 / s
        }
    }

    /// An all-zero snapshot — the identity of [`merge`](Self::merge).
    pub fn empty() -> Self {
        Self {
            requests_completed: 0,
            requests_rejected: 0,
            batches: 0,
            model_swaps: 0,
            mean_batch_size: 0.0,
            max_batch_size: 0,
            p50_latency: Latency::ZERO,
            p99_latency: Latency::ZERO,
            mean_latency: Latency::ZERO,
            total_energy: Energy::ZERO,
            simulated_busy: Latency::ZERO,
            edp: 0.0,
            macs: 0,
            pe_matvecs: 0,
            mean_queue_wait: Duration::ZERO,
            wall_elapsed: Duration::ZERO,
            latency_samples_ns: Vec::new(),
        }
    }

    /// Merges two snapshots into the snapshot an imaginary single runtime
    /// serving both workloads would have produced: counters add, means
    /// re-weight, percentiles are **recomputed from the pooled latency
    /// samples** (not interpolated from the per-snapshot percentiles),
    /// energy/busy ledgers add and the EDP is re-derived from the merged
    /// totals. Wall-clock elapsed takes the max — replicas run
    /// concurrently, their lifetimes don't stack.
    pub fn merge(&self, other: &RuntimeStats) -> RuntimeStats {
        let mut samples =
            Vec::with_capacity(self.latency_samples_ns.len() + other.latency_samples_ns.len());
        samples.extend_from_slice(&self.latency_samples_ns);
        samples.extend_from_slice(&other.latency_samples_ns);
        let latency = LatencySummary::from_ns(&samples);
        let batches = self.batches + other.batches;
        let completed = self.requests_completed + other.requests_completed;
        let total_energy = self.total_energy + other.total_energy;
        let simulated_busy = self.simulated_busy + other.simulated_busy;
        RuntimeStats {
            requests_completed: completed,
            requests_rejected: self.requests_rejected + other.requests_rejected,
            batches,
            model_swaps: self.model_swaps + other.model_swaps,
            mean_batch_size: if batches == 0 {
                0.0
            } else {
                (self.mean_batch_size * self.batches as f64
                    + other.mean_batch_size * other.batches as f64)
                    / batches as f64
            },
            max_batch_size: self.max_batch_size.max(other.max_batch_size),
            p50_latency: latency.p50,
            p99_latency: latency.p99,
            mean_latency: latency.mean,
            total_energy,
            simulated_busy,
            edp: edp(total_energy, simulated_busy),
            macs: self.macs + other.macs,
            pe_matvecs: self.pe_matvecs + other.pe_matvecs,
            mean_queue_wait: if completed == 0 {
                Duration::ZERO
            } else {
                Duration::from_secs_f64(
                    (self.mean_queue_wait.as_secs_f64() * self.requests_completed as f64
                        + other.mean_queue_wait.as_secs_f64() * other.requests_completed as f64)
                        / completed as f64,
                )
            },
            wall_elapsed: self.wall_elapsed.max(other.wall_elapsed),
            latency_samples_ns: samples,
        }
    }
}

impl std::iter::Sum for RuntimeStats {
    fn sum<I: Iterator<Item = RuntimeStats>>(iter: I) -> Self {
        iter.fold(RuntimeStats::empty(), |acc, s| acc.merge(&s))
    }
}

impl<'a> std::iter::Sum<&'a RuntimeStats> for RuntimeStats {
    fn sum<I: Iterator<Item = &'a RuntimeStats>>(iter: I) -> Self {
        iter.fold(RuntimeStats::empty(), |acc, s| acc.merge(s))
    }
}

impl fmt::Display for RuntimeStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} reqs in {} batches (mean {:.2}/batch, max {}), {} rejected; \
             sim latency p50 {} p99 {}, energy {}, EDP {:.3e} pJ·ns, {:.0} req/s",
            self.requests_completed,
            self.batches,
            self.mean_batch_size,
            self.max_batch_size,
            self.requests_rejected,
            self.p50_latency,
            self.p99_latency,
            self.total_energy,
            self.edp,
            self.throughput_rps()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_device::EnergyLedger;

    fn batch_ledger(cycles: u64, ns: f64, pj: f64) -> PeStats {
        let mut energy = EnergyLedger::new();
        energy.add_compute(Energy::from_pj(pj));
        PeStats {
            cycles,
            busy_time: Latency::from_ns(ns),
            energy,
            loads: 0,
            matvecs: 1,
            macs: 10,
            write_bits: 0,
            write_retries: 0,
            write_faults: 0,
        }
    }

    #[test]
    fn snapshot_aggregates_batches() {
        let c = StatsCollector::new();
        c.record_batch(3, batch_ledger(10, 100.0, 5.0), Duration::from_micros(30));
        c.record_batch(1, batch_ledger(10, 300.0, 2.0), Duration::from_micros(10));
        c.record_rejection();
        c.record_swap();
        let s = c.snapshot();
        assert_eq!(s.requests_completed, 4);
        assert_eq!(s.requests_rejected, 1);
        assert_eq!(s.batches, 2);
        assert_eq!(s.model_swaps, 1);
        assert_eq!(s.max_batch_size, 3);
        assert!((s.mean_batch_size - 2.0).abs() < 1e-12);
        // Latency samples: [100, 100, 100, 300] ns.
        assert_eq!(s.p50_latency, Latency::from_ns(100.0));
        assert_eq!(s.p99_latency, Latency::from_ns(300.0));
        assert_eq!(s.total_energy, Energy::from_pj(7.0));
        assert_eq!(s.macs, 20);
        assert!(s.edp > 0.0);
        assert!(s.to_string().contains("4 reqs"));
    }

    #[test]
    fn empty_snapshot_is_all_zero() {
        let s = StatsCollector::new().snapshot();
        assert_eq!(s.requests_completed, 0);
        assert_eq!(s.p99_latency, Latency::from_ns(0.0));
        assert_eq!(s.mean_batch_size, 0.0);
        assert_eq!(s.throughput_rps(), 0.0);
    }

    /// Two per-replica collectors vs one collector fed the union of their
    /// batches: `merge` must reproduce the flat computation — percentiles
    /// from the pooled samples, not from the per-replica percentiles.
    #[test]
    fn merged_percentiles_pin_to_the_flat_sample_computation() {
        let a = StatsCollector::new();
        let b = StatsCollector::new();
        let flat = StatsCollector::new();
        // Skewed splits so naive percentile-of-percentiles would be wrong:
        // replica a serves the fast batches, replica b the slow tail.
        let batches: &[(usize, u64, f64, f64, bool)] = &[
            (3, 10, 100.0, 5.0, true),
            (5, 12, 110.0, 6.0, true),
            (2, 20, 900.0, 9.0, false),
            (1, 30, 4000.0, 11.0, false),
            (4, 11, 105.0, 5.5, true),
        ];
        for &(size, cycles, ns, pj, on_a) in batches {
            let ledger = batch_ledger(cycles, ns, pj);
            let wait = Duration::from_micros(10 * size as u64);
            if on_a {
                a.record_batch(size, ledger, wait);
            } else {
                b.record_batch(size, ledger, wait);
            }
            flat.record_batch(size, ledger, wait);
        }
        a.record_rejection();
        b.record_rejection();
        flat.record_rejection();
        flat.record_rejection();

        let merged = a.snapshot().merge(&b.snapshot());
        let want = flat.snapshot();
        assert_eq!(merged.requests_completed, want.requests_completed);
        assert_eq!(merged.requests_rejected, want.requests_rejected);
        assert_eq!(merged.batches, want.batches);
        assert_eq!(merged.max_batch_size, want.max_batch_size);
        assert!((merged.mean_batch_size - want.mean_batch_size).abs() < 1e-12);
        // The pinned part: pooled-sample percentiles, exactly.
        assert_eq!(merged.p50_latency, want.p50_latency);
        assert_eq!(merged.p99_latency, want.p99_latency);
        assert_eq!(merged.mean_latency, want.mean_latency);
        // Ledger sums and the re-derived EDP.
        assert_eq!(merged.total_energy, want.total_energy);
        assert_eq!(merged.simulated_busy, want.simulated_busy);
        assert_eq!(merged.edp, want.edp);
        assert_eq!(merged.macs, want.macs);
        assert_eq!(merged.pe_matvecs, want.pe_matvecs);
        // Sample multiset survives the merge (order is concatenation).
        let mut got = merged.latency_samples_ns.clone();
        let mut flat_samples = want.latency_samples_ns.clone();
        got.sort_by(f64::total_cmp);
        flat_samples.sort_by(f64::total_cmp);
        assert_eq!(got, flat_samples);
    }

    #[test]
    fn merge_with_empty_is_identity_and_sum_folds() {
        let c = StatsCollector::new();
        c.record_batch(2, batch_ledger(10, 50.0, 1.0), Duration::from_micros(5));
        let s = c.snapshot();
        let merged = RuntimeStats::empty().merge(&s);
        assert_eq!(merged.requests_completed, s.requests_completed);
        assert_eq!(merged.p50_latency, s.p50_latency);
        assert_eq!(merged.total_energy, s.total_energy);
        assert_eq!(merged.latency_samples_ns, s.latency_samples_ns);

        let summed: RuntimeStats = [s.clone(), s.clone(), s.clone()].iter().sum();
        assert_eq!(summed.requests_completed, 6);
        assert_eq!(summed.batches, 3);
        assert_eq!(summed.p99_latency, s.p99_latency, "identical replicas");
        let owned: RuntimeStats = vec![s.clone(), s].into_iter().sum();
        assert_eq!(owned.requests_completed, 4);
    }
}
