//! The runtime's pre-registered telemetry handles.
//!
//! Built once at [`Runtime`](crate::Runtime) start from the
//! [`Telemetry`] bundle passed to the builder; workers and `submit`
//! update the handles (plain atomics) and never touch the registry
//! again. Metric names are stable API — dashboards and tests re-acquire
//! the same series through the registry's get-or-register semantics.

use pim_pe::PeTelemetry;
use pim_telemetry::{exponential_buckets, Counter, Gauge, Histogram, Telemetry};
use std::sync::Arc;

/// Stage label values of [`STAGE_METRIC`], in pipeline order.
pub const STAGES: [&str; 4] = ["queue", "batch_form", "compute", "reply"];

/// Histogram family of per-stage wall-clock seconds.
pub const STAGE_METRIC: &str = "pim_runtime_stage_seconds";

/// The `source` label the runtime's [`PeTelemetry`] counters carry.
pub const PE_SOURCE: &str = "serve";

#[derive(Debug, Clone)]
pub(crate) struct RuntimeTelemetry {
    /// The bundle itself, for tracer access.
    pub bundle: Arc<Telemetry>,
    /// Requests accepted but not yet dispatched.
    pub queue_depth: Gauge,
    /// Riders per dispatched batch.
    pub batch_size: Histogram,
    /// Wall time from enqueue to worker dispatch, per rider.
    pub stage_queue: Histogram,
    /// Wall time from seed pop to dispatch, per batch.
    pub stage_batch_form: Histogram,
    /// Wall time of the PE forward pass, per batch.
    pub stage_compute: Histogram,
    /// Wall time spent answering tickets, per batch.
    pub stage_reply: Histogram,
    /// Requests answered.
    pub requests_total: Counter,
    /// Backpressure rejections.
    pub rejected_total: Counter,
    /// Per-model quota rejections (governor throttling).
    pub throttled_total: Counter,
    /// Hot model swaps published.
    pub swaps_total: Counter,
    /// Executors (worker threads + dispatching caller) of the shared
    /// intra-request compute pool.
    pub pool_threads: Gauge,
    /// Cumulative jobs the compute pool has dispatched across its workers.
    pub pool_jobs: Gauge,
    /// Cumulative jobs the pool ran inline (serial pool or contended
    /// dispatch).
    pub pool_inline_jobs: Gauge,
    /// Cumulative pool tasks executed by the dispatching worker itself.
    pub pool_caller_tasks: Gauge,
    /// Cumulative pool tasks stolen by the pool's helper threads.
    pub pool_worker_tasks: Gauge,
    /// The `PeStats` mirror attached to every served branch.
    pub pe: PeTelemetry,
}

impl RuntimeTelemetry {
    /// Registers (or re-acquires) every serving family. With a `replica`
    /// label the same family names register **distinct series** carrying
    /// `replica="<label>"` — how a cluster keeps N runtimes apart in one
    /// registry — and with `None` the families are unlabelled, exactly as
    /// a standalone runtime has always registered them.
    pub(crate) fn register(bundle: Arc<Telemetry>, replica: Option<&str>) -> Self {
        let registry = &bundle.registry;
        // 1µs .. ~67s, factor 4: covers sub-batch waits through stalls.
        let seconds = exponential_buckets(1e-6, 4.0, 13);
        let base: Vec<(&str, &str)> = match replica {
            Some(r) => vec![("replica", r)],
            None => Vec::new(),
        };
        let stage = |stage: &str| {
            let mut labels = vec![("stage", stage)];
            labels.extend_from_slice(&base);
            registry.histogram_with(
                STAGE_METRIC,
                "Wall-clock seconds spent per serving stage",
                &seconds,
                &labels,
            )
        };
        let counter = |name: &str, help: &str| registry.counter_with(name, help, &base);
        let gauge = |name: &str, help: &str| registry.gauge_with(name, help, &base);
        Self {
            queue_depth: gauge(
                "pim_runtime_queue_depth",
                "Requests accepted but not yet dispatched",
            ),
            batch_size: registry.histogram_with(
                "pim_runtime_batch_size",
                "Riders per dispatched PE batch",
                &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0],
                &base,
            ),
            stage_queue: stage(STAGES[0]),
            stage_batch_form: stage(STAGES[1]),
            stage_compute: stage(STAGES[2]),
            stage_reply: stage(STAGES[3]),
            requests_total: counter(
                "pim_runtime_requests_total",
                "Requests answered by the serving pool",
            ),
            rejected_total: counter(
                "pim_runtime_rejected_total",
                "Requests refused with QueueFull backpressure",
            ),
            throttled_total: counter(
                "pim_runtime_throttled_total",
                "Requests refused by a per-model admission quota",
            ),
            swaps_total: counter(
                "pim_runtime_swaps_total",
                "Hot model swaps published into serving",
            ),
            // Gauges, not counters: they mirror the pool's own cumulative
            // snapshot (set, never inc'd) once per served batch.
            pool_threads: gauge(
                "pim_par_pool_threads",
                "Executors of the shared intra-request compute pool",
            ),
            pool_jobs: gauge(
                "pim_par_pool_jobs",
                "Cumulative fork-join jobs dispatched across pool workers",
            ),
            pool_inline_jobs: gauge(
                "pim_par_pool_inline_jobs",
                "Cumulative pool jobs run inline (serial or contended)",
            ),
            pool_caller_tasks: gauge(
                "pim_par_pool_caller_tasks",
                "Cumulative pool tasks executed by the dispatching thread",
            ),
            pool_worker_tasks: gauge(
                "pim_par_pool_worker_tasks",
                "Cumulative pool tasks stolen by pool helper threads",
            ),
            pe: match replica {
                Some(r) => PeTelemetry::register_with(registry, PE_SOURCE, &[("replica", r)]),
                None => PeTelemetry::register(registry, PE_SOURCE),
            },
            bundle,
        }
    }
}
