//! The runtime's pre-registered telemetry handles.
//!
//! Built once at [`Runtime`](crate::Runtime) start from the
//! [`Telemetry`] bundle passed to the builder; workers and `submit`
//! update the handles (plain atomics) and never touch the registry
//! again. Metric names are stable API — dashboards and tests re-acquire
//! the same series through the registry's get-or-register semantics.

use pim_pe::PeTelemetry;
use pim_telemetry::{exponential_buckets, Counter, Gauge, Histogram, Telemetry};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Stage label values of [`STAGE_METRIC`], in pipeline order.
pub const STAGES: [&str; 4] = ["queue", "batch_form", "compute", "reply"];

/// Histogram family of per-stage wall-clock seconds.
pub const STAGE_METRIC: &str = "pim_runtime_stage_seconds";

/// The `source` label the runtime's [`PeTelemetry`] counters carry.
pub const PE_SOURCE: &str = "serve";

#[derive(Debug, Clone)]
pub(crate) struct RuntimeTelemetry {
    /// The bundle itself, for tracer access.
    pub bundle: Arc<Telemetry>,
    /// Requests accepted but not yet dispatched.
    pub queue_depth: Gauge,
    /// Riders per dispatched batch.
    pub batch_size: Histogram,
    /// Wall time from enqueue to worker dispatch, per rider.
    pub stage_queue: Histogram,
    /// Wall time from seed pop to dispatch, per batch.
    pub stage_batch_form: Histogram,
    /// Wall time of the PE forward pass, per batch.
    pub stage_compute: Histogram,
    /// Wall time spent answering tickets, per batch.
    pub stage_reply: Histogram,
    /// Requests answered.
    pub requests_total: Counter,
    /// Backpressure rejections.
    pub rejected_total: Counter,
    /// Per-model quota rejections (governor throttling).
    pub throttled_total: Counter,
    /// Hot model swaps published.
    pub swaps_total: Counter,
    /// Executors (worker threads + dispatching caller) of the shared
    /// intra-request compute pool.
    pub pool_threads: Gauge,
    /// Cumulative jobs the compute pool has dispatched across its workers.
    pub pool_jobs: Gauge,
    /// Cumulative jobs the pool ran inline (serial pool or contended
    /// dispatch).
    pub pool_inline_jobs: Gauge,
    /// Cumulative pool tasks executed by the dispatching worker itself.
    pub pool_caller_tasks: Gauge,
    /// Cumulative pool tasks stolen by the pool's helper threads.
    pub pool_worker_tasks: Gauge,
    /// Cumulative deque steals inside the compute pool's scheduler.
    pub pool_steals: Gauge,
    /// Cumulative executor parks (idle backoff) inside the scheduler.
    pub pool_parks: Gauge,
    /// Cumulative lazy-halving splits inside the scheduler.
    pub pool_splits: Gauge,
    /// Monotone counter view of `pool_steals` (scrapers alert on rates).
    pub steals_total: Counter,
    /// Monotone counter view of `pool_parks`.
    pub parks_total: Counter,
    /// Monotone counter view of `pool_splits`.
    pub splits_total: Counter,
    /// Last pool-counter snapshot mirrored into the `*_total` counters,
    /// packed `(steals, parks, splits)`; see [`Self::mirror_pool`].
    last_pool: Arc<[AtomicU64; 3]>,
    /// The `PeStats` mirror attached to every served branch.
    pub pe: PeTelemetry,
}

impl RuntimeTelemetry {
    /// Registers (or re-acquires) every serving family. With a `replica`
    /// label the same family names register **distinct series** carrying
    /// `replica="<label>"` — how a cluster keeps N runtimes apart in one
    /// registry — and with `None` the families are unlabelled, exactly as
    /// a standalone runtime has always registered them.
    pub(crate) fn register(bundle: Arc<Telemetry>, replica: Option<&str>) -> Self {
        let registry = &bundle.registry;
        // 1µs .. ~67s, factor 4: covers sub-batch waits through stalls.
        let seconds = exponential_buckets(1e-6, 4.0, 13);
        let base: Vec<(&str, &str)> = match replica {
            Some(r) => vec![("replica", r)],
            None => Vec::new(),
        };
        let stage = |stage: &str| {
            let mut labels = vec![("stage", stage)];
            labels.extend_from_slice(&base);
            registry.histogram_with(
                STAGE_METRIC,
                "Wall-clock seconds spent per serving stage",
                &seconds,
                &labels,
            )
        };
        let counter = |name: &str, help: &str| registry.counter_with(name, help, &base);
        let gauge = |name: &str, help: &str| registry.gauge_with(name, help, &base);
        Self {
            queue_depth: gauge(
                "pim_runtime_queue_depth",
                "Requests accepted but not yet dispatched",
            ),
            batch_size: registry.histogram_with(
                "pim_runtime_batch_size",
                "Riders per dispatched PE batch",
                &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0],
                &base,
            ),
            stage_queue: stage(STAGES[0]),
            stage_batch_form: stage(STAGES[1]),
            stage_compute: stage(STAGES[2]),
            stage_reply: stage(STAGES[3]),
            requests_total: counter(
                "pim_runtime_requests_total",
                "Requests answered by the serving pool",
            ),
            rejected_total: counter(
                "pim_runtime_rejected_total",
                "Requests refused with QueueFull backpressure",
            ),
            throttled_total: counter(
                "pim_runtime_throttled_total",
                "Requests refused by a per-model admission quota",
            ),
            swaps_total: counter(
                "pim_runtime_swaps_total",
                "Hot model swaps published into serving",
            ),
            // Gauges, not counters: they mirror the pool's own cumulative
            // snapshot (set, never inc'd) once per served batch.
            pool_threads: gauge(
                "pim_par_pool_threads",
                "Executors of the shared intra-request compute pool",
            ),
            pool_jobs: gauge(
                "pim_par_pool_jobs",
                "Cumulative fork-join jobs dispatched across pool workers",
            ),
            pool_inline_jobs: gauge(
                "pim_par_pool_inline_jobs",
                "Cumulative pool jobs run inline (serial or contended)",
            ),
            pool_caller_tasks: gauge(
                "pim_par_pool_caller_tasks",
                "Cumulative pool tasks executed by the dispatching thread",
            ),
            pool_worker_tasks: gauge(
                "pim_par_pool_worker_tasks",
                "Cumulative pool tasks stolen by pool helper threads",
            ),
            pool_steals: gauge(
                "pim_par_pool_steals",
                "Cumulative deque steals inside the compute pool scheduler",
            ),
            pool_parks: gauge(
                "pim_par_pool_parks",
                "Cumulative executor parks (idle backoff) in the scheduler",
            ),
            pool_splits: gauge(
                "pim_par_pool_splits",
                "Cumulative lazy-halving task splits in the scheduler",
            ),
            steals_total: counter(
                "pim_par_steals_total",
                "Deque steals inside the compute pool scheduler",
            ),
            parks_total: counter(
                "pim_par_parks_total",
                "Executor parks (idle backoff) in the compute pool scheduler",
            ),
            splits_total: counter(
                "pim_par_splits_total",
                "Lazy-halving task splits in the compute pool scheduler",
            ),
            last_pool: Arc::new([AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)]),
            pe: match replica {
                Some(r) => PeTelemetry::register_with(registry, PE_SOURCE, &[("replica", r)]),
                None => PeTelemetry::register(registry, PE_SOURCE),
            },
            bundle,
        }
    }

    /// Mirrors one compute-pool counter snapshot into the telemetry
    /// handles: gauges take the cumulative value directly, and the
    /// `*_total` counters take the **delta** since the last mirrored
    /// snapshot (an atomic swap per series, so concurrent workers each
    /// add a disjoint slice and the sums telescope — the counters stay
    /// monotone and converge to the pool's own cumulative totals).
    pub(crate) fn mirror_pool(&self, pc: &pim_par::PoolCounters) {
        self.pool_jobs.set(pc.jobs as f64);
        self.pool_inline_jobs.set(pc.inline_jobs as f64);
        self.pool_caller_tasks.set(pc.caller_tasks as f64);
        self.pool_worker_tasks.set(pc.worker_tasks as f64);
        self.pool_steals.set(pc.steals as f64);
        self.pool_parks.set(pc.parks as f64);
        self.pool_splits.set(pc.splits as f64);
        let series = [
            (&self.steals_total, pc.steals),
            (&self.parks_total, pc.parks),
            (&self.splits_total, pc.splits),
        ];
        for (i, (counter, now)) in series.into_iter().enumerate() {
            let prev = self.last_pool[i].swap(now, Ordering::Relaxed);
            if now > prev {
                counter.add((now - prev) as f64);
            }
        }
    }
}
