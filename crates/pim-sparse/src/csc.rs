//! Structured compressed-sparse-column storage — the format the PEs consume.
//!
//! Figure 4 of the paper shows the mapping: the sparse weight matrix is
//! compressed **along the column direction** into a pair of matrices — the
//! compressed weight values and the corresponding index matrix. Because the
//! sparsity is N:M structured, the compressed layout has *fixed geometry*:
//! every aligned group of `M` logical rows maps to exactly `N` physical
//! slots, each slot holding an 8-bit weight and a 4-bit offset-within-group
//! index. Empty slots (groups with fewer than `N` survivors) store a zero
//! weight, which contributes nothing when accumulated.
//!
//! The fixed geometry is what lets the hardware lay out a whole column in
//! `groups × N` physical rows and decode it with nothing but a per-row
//! comparator — no pointers, no variable-length records.

use crate::mask::{MaskShapeError, NmMask};
use crate::matrix::Matrix;
use crate::pattern::NmPattern;
use crate::prune::prune_magnitude;
use std::fmt;

/// One physical storage slot: an INT8 weight plus its offset within the
/// logical `M`-group (what the 4-bit hardware index field stores).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CscSlot {
    /// Stored weight value.
    pub value: i8,
    /// Offset of the weight within its group, `0..M`.
    pub offset: u8,
    /// Whether the slot holds a real (mask-kept) weight. Unoccupied slots
    /// are zero-filled padding that the accumulate path can skip.
    pub occupied: bool,
}

/// An N:M structured sparse matrix in compressed sparse column form.
///
/// Logical shape is `(rows, cols)` with `rows` the reduction dimension;
/// physical storage is `cols` columns × `groups × N` slots.
///
/// # Example
///
/// ```
/// use pim_sparse::{CscMatrix, Matrix, NmPattern};
///
/// let dense = Matrix::from_rows(vec![
///     vec![0i8, 4],
///     vec![7, 0],
///     vec![0, 0],
///     vec![0, 0],
/// ])?;
/// let csc = CscMatrix::compress_auto(&dense, NmPattern::new(1, 4)?)?;
/// assert_eq!(csc.nnz(), 2);
/// assert_eq!(csc.decompress(), dense);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CscMatrix {
    rows: usize,
    cols: usize,
    pattern: NmPattern,
    /// `slots[col]` has `pattern.slots_for(rows)` entries, `N` per group in
    /// group order.
    slots: Vec<Vec<CscSlot>>,
}

impl CscMatrix {
    /// Compresses `dense` under an explicit, already-validated mask.
    ///
    /// Mask-kept entries land in their group's slots in row order; remaining
    /// slots are zero padding.
    ///
    /// # Errors
    ///
    /// Returns [`CompressError::Shape`] if the mask and matrix shapes
    /// disagree.
    pub fn compress(dense: &Matrix<i8>, mask: &NmMask) -> Result<Self, CompressError> {
        if dense.shape() != mask.shape() {
            return Err(CompressError::Shape(MaskShapeError {
                mask: mask.shape(),
                matrix: dense.shape(),
            }));
        }
        let pattern = mask.pattern();
        let (rows, cols) = dense.shape();
        let n = pattern.n();
        let m = pattern.m();
        let groups = pattern.groups_for(rows);
        let mut slots = Vec::with_capacity(cols);
        for c in 0..cols {
            let mut col_slots = vec![CscSlot::default(); groups * n];
            for g in 0..groups {
                let start = g * m;
                let end = (start + m).min(rows);
                let mut slot = 0;
                for r in start..end {
                    if mask.is_kept(r, c) {
                        col_slots[g * n + slot] = CscSlot {
                            value: dense[(r, c)],
                            offset: (r - start) as u8,
                            occupied: true,
                        };
                        slot += 1;
                    }
                }
            }
            slots.push(col_slots);
        }
        Ok(Self {
            rows,
            cols,
            pattern,
            slots,
        })
    }

    /// Compresses `dense` by deriving the mask from its non-zero structure
    /// via magnitude pruning — convenient when the matrix is already N:M
    /// sparse (the pruning then keeps exactly the non-zeros).
    ///
    /// # Errors
    ///
    /// Returns [`CompressError::Empty`] for an empty matrix.
    pub fn compress_auto(dense: &Matrix<i8>, pattern: NmPattern) -> Result<Self, CompressError> {
        let mask = prune_magnitude(dense, pattern).map_err(|_| CompressError::Empty)?;
        Self::compress(dense, &mask)
    }

    /// Logical `(rows, cols)` of the represented matrix.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Logical reduction-dimension length.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of output columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The sparsity pattern of the encoding.
    pub fn pattern(&self) -> NmPattern {
        self.pattern
    }

    /// Number of groups per column.
    pub fn groups(&self) -> usize {
        self.pattern.groups_for(self.rows)
    }

    /// Physical slots per column (`groups × N`).
    pub fn slots_per_col(&self) -> usize {
        self.pattern.slots_for(self.rows)
    }

    /// The slot array of one column, in group order.
    ///
    /// # Panics
    ///
    /// Panics if `col` is out of bounds.
    pub fn column_slots(&self, col: usize) -> &[CscSlot] {
        &self.slots[col]
    }

    /// Number of occupied slots (true non-zero structure count).
    pub fn nnz(&self) -> usize {
        self.slots
            .iter()
            .flat_map(|c| c.iter())
            .filter(|s| s.occupied)
            .count()
    }

    /// Total storage in bits: every physical slot pays
    /// `weight_bits + index_bits`, occupied or not (fixed geometry).
    pub fn storage_bits(&self, weight_bits: u32) -> u64 {
        (self.cols * self.slots_per_col()) as u64 * (weight_bits + self.pattern.index_bits()) as u64
    }

    /// Reconstructs the dense matrix (pruned entries become zero).
    pub fn decompress(&self) -> Matrix<i8> {
        let m = self.pattern.m();
        let n = self.pattern.n();
        let mut out = Matrix::zeros(self.rows, self.cols);
        for (c, col_slots) in self.slots.iter().enumerate() {
            for (i, slot) in col_slots.iter().enumerate() {
                if slot.occupied {
                    let group = i / n;
                    let row = group * m + slot.offset as usize;
                    out[(row, c)] = slot.value;
                }
            }
        }
        out
    }

    /// Iterates over `(row, col, value)` of occupied slots.
    pub fn entries(&self) -> impl Iterator<Item = (usize, usize, i8)> + '_ {
        let m = self.pattern.m();
        let n = self.pattern.n();
        self.slots.iter().enumerate().flat_map(move |(c, col)| {
            col.iter()
                .enumerate()
                .filter(|(_, s)| s.occupied)
                .map(move |(i, s)| {
                    let row = (i / n) * m + s.offset as usize;
                    (row, c, s.value)
                })
        })
    }

    /// Sparse matrix–vector product `y = Wᵀ·x` in the PE's orientation:
    /// `y[c] = Σ_r W[r][c] · x[r]`, accumulating in `i32`.
    ///
    /// This is the functional reference the cycle-level PEs are tested
    /// against.
    ///
    /// # Errors
    ///
    /// Returns [`DimensionError`] if `x.len() != rows`.
    pub fn matvec(&self, x: &[i32]) -> Result<Vec<i32>, DimensionError> {
        if x.len() != self.rows {
            return Err(DimensionError {
                expected: self.rows,
                actual: x.len(),
            });
        }
        let m = self.pattern.m();
        let n = self.pattern.n();
        let mut y = vec![0i32; self.cols];
        for (c, col_slots) in self.slots.iter().enumerate() {
            let mut acc = 0i32;
            for (i, slot) in col_slots.iter().enumerate() {
                if slot.occupied {
                    let row = (i / n) * m + slot.offset as usize;
                    acc += slot.value as i32 * x[row];
                }
            }
            y[c] = acc;
        }
        Ok(y)
    }

    /// Sparse matrix–matrix product against a dense right-hand side
    /// `X: (rows × batch)`, producing `(cols × batch)`.
    ///
    /// # Errors
    ///
    /// Returns [`DimensionError`] if `x.rows() != rows`.
    pub fn matmul(&self, x: &Matrix<i32>) -> Result<Matrix<i32>, DimensionError> {
        if x.rows() != self.rows {
            return Err(DimensionError {
                expected: self.rows,
                actual: x.rows(),
            });
        }
        let mut out = Matrix::zeros(self.cols, x.cols());
        for b in 0..x.cols() {
            let xb = x.col(b);
            let y = self.matvec(&xb)?;
            for c in 0..self.cols {
                out[(c, b)] = y[c];
            }
        }
        Ok(out)
    }
}

impl fmt::Display for CscMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CscMatrix {}x{} pattern {} ({} nnz in {} slots)",
            self.rows,
            self.cols,
            self.pattern,
            self.nnz(),
            self.cols * self.slots_per_col()
        )
    }
}

/// Error compressing a matrix into CSC form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompressError {
    /// Mask and matrix shapes disagreed.
    Shape(MaskShapeError),
    /// The matrix was empty.
    Empty,
}

impl fmt::Display for CompressError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Shape(e) => write!(f, "{e}"),
            Self::Empty => write!(f, "cannot compress an empty matrix"),
        }
    }
}

impl std::error::Error for CompressError {}

impl From<MaskShapeError> for CompressError {
    fn from(e: MaskShapeError) -> Self {
        Self::Shape(e)
    }
}

/// Error: an operand length disagreed with the matrix's logical shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DimensionError {
    /// Required length.
    pub expected: usize,
    /// Supplied length.
    pub actual: usize,
}

impl fmt::Display for DimensionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "operand length {} does not match reduction dimension {}",
            self.actual, self.expected
        )
    }
}

impl std::error::Error for DimensionError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::{dense_matvec, masked_dense};

    fn sample() -> (Matrix<i8>, NmMask) {
        let dense = Matrix::from_rows(vec![
            vec![3i8, 0, -1],
            vec![0, 5, 0],
            vec![0, 0, 0],
            vec![-2, 0, 0],
            vec![0, 0, 9],
            vec![0, -6, 0],
            vec![1, 0, 0],
            vec![0, 0, -4],
        ])
        .unwrap();
        let mask = prune_magnitude(&dense, NmPattern::two_of_four()).unwrap();
        (dense, mask)
    }

    #[test]
    fn compress_decompress_round_trip() {
        let (dense, mask) = sample();
        let csc = CscMatrix::compress(&dense, &mask).unwrap();
        let masked = mask.apply(&dense).unwrap();
        assert_eq!(csc.decompress(), masked);
    }

    #[test]
    fn auto_compress_of_already_sparse_matrix_is_lossless() {
        let dense =
            Matrix::from_rows(vec![vec![0i8, 4], vec![7, 0], vec![0, 0], vec![0, 0]]).unwrap();
        let csc = CscMatrix::compress_auto(&dense, NmPattern::one_of_four()).unwrap();
        assert_eq!(csc.decompress(), dense);
        assert_eq!(csc.nnz(), 2);
    }

    #[test]
    fn matvec_matches_masked_dense_reference() {
        let (dense, mask) = sample();
        let csc = CscMatrix::compress(&dense, &mask).unwrap();
        let x: Vec<i32> = (1..=8).collect();
        let reference = dense_matvec(&masked_dense(&dense, &mask).unwrap(), &x).unwrap();
        assert_eq!(csc.matvec(&x).unwrap(), reference);
    }

    #[test]
    fn matvec_rejects_wrong_length() {
        let (dense, mask) = sample();
        let csc = CscMatrix::compress(&dense, &mask).unwrap();
        let err = csc.matvec(&[1, 2, 3]).unwrap_err();
        assert_eq!(err.expected, 8);
        assert_eq!(err.actual, 3);
    }

    #[test]
    fn matmul_runs_per_batch_column() {
        let (dense, mask) = sample();
        let csc = CscMatrix::compress(&dense, &mask).unwrap();
        let x = Matrix::from_fn(8, 3, |r, c| (r + c) as i32);
        let out = csc.matmul(&x).unwrap();
        assert_eq!(out.shape(), (3, 3));
        for b in 0..3 {
            let y = csc.matvec(&x.col(b)).unwrap();
            assert_eq!(out.col(b), y);
        }
    }

    #[test]
    fn fixed_geometry_slot_counts() {
        let (dense, mask) = sample();
        let csc = CscMatrix::compress(&dense, &mask).unwrap();
        // 8 rows, 2:4 → 2 groups × 2 slots = 4 slots per column.
        assert_eq!(csc.slots_per_col(), 4);
        assert_eq!(csc.groups(), 2);
        // Storage: 3 cols × 4 slots × (8 + 2) bits.
        assert_eq!(csc.storage_bits(8), 3 * 4 * 10);
    }

    #[test]
    fn entries_iterate_occupied_slots_only() {
        let (dense, mask) = sample();
        let csc = CscMatrix::compress(&dense, &mask).unwrap();
        let masked = mask.apply(&dense).unwrap();
        for (r, c, v) in csc.entries() {
            assert_eq!(masked[(r, c)], v);
            assert_ne!(v, 0, "auto mask never keeps zeros in this sample");
        }
        assert_eq!(csc.entries().count(), csc.nnz());
    }

    #[test]
    fn tail_partial_group_maps_correctly() {
        // 6 rows with 1:4 → 2 groups, tail group covers rows 4..6.
        let dense = Matrix::from_rows(vec![
            vec![0i8],
            vec![2],
            vec![0],
            vec![0],
            vec![0],
            vec![-3],
        ])
        .unwrap();
        let csc = CscMatrix::compress_auto(&dense, NmPattern::one_of_four()).unwrap();
        assert_eq!(csc.decompress(), dense);
        let y = csc.matvec(&[1, 10, 100, 1000, 10_000, 100_000]).unwrap();
        assert_eq!(y, vec![20 - 300_000]);
    }

    #[test]
    fn compress_rejects_shape_mismatch() {
        let (dense, mask) = sample();
        let small: Matrix<i8> = Matrix::zeros(4, 3);
        assert!(matches!(
            CscMatrix::compress(&small, &mask),
            Err(CompressError::Shape(_))
        ));
        drop(dense);
    }

    #[test]
    fn display_summarizes() {
        let (dense, mask) = sample();
        let csc = CscMatrix::compress(&dense, &mask).unwrap();
        let s = csc.to_string();
        assert!(s.contains("2:4"));
        assert!(s.contains("8x3"));
    }

    #[test]
    fn int8_extremes_survive_compression() {
        let dense = Matrix::from_rows(vec![
            vec![i8::MIN],
            vec![0],
            vec![0],
            vec![0],
            vec![0],
            vec![i8::MAX],
            vec![0],
            vec![0],
        ])
        .unwrap();
        let csc = CscMatrix::compress_auto(&dense, NmPattern::one_of_four()).unwrap();
        assert_eq!(csc.decompress(), dense);
        let y = csc.matvec(&[1, 0, 0, 0, 1, 1, 0, 0]).unwrap();
        assert_eq!(y, vec![i8::MIN as i32 + i8::MAX as i32]);
    }
}
