//! Compressed sparse row storage — the dual of CSC, kept for the mapping
//! ablation.
//!
//! The paper argues (§3.1) that CSR is the *wrong* format for a digital PIM
//! whose multiplications ride on shared row word-lines: CSR preserves row
//! structure (accumulation) but breaks column structure (multiplication),
//! forcing input reordering and a per-cycle write-back buffer. We implement
//! CSR anyway so the `ablation_csc_vs_csr` bench can quantify that cost —
//! [`CsrMatrix::matvec_with_stats`] counts the input-gather and write-back
//! traffic a CSR mapping would induce, next to the same counts for CSC.

use crate::matrix::Matrix;
use std::fmt;

pub use crate::csc::DimensionError;

/// Classic CSR: row pointers, column indices, values.
///
/// # Example
///
/// ```
/// use pim_sparse::{CsrMatrix, Matrix};
///
/// let dense = Matrix::from_rows(vec![vec![0i8, 2], vec![3, 0]])?;
/// let csr = CsrMatrix::from_dense(&dense);
/// assert_eq!(csr.nnz(), 2);
/// assert_eq!(csr.to_dense(), dense);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    values: Vec<i8>,
}

/// Traffic counters for the mapping ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CsrTrafficStats {
    /// Random input gathers (one per stored non-zero: CSR walks columns
    /// out of order within a row).
    pub input_gathers: u64,
    /// Partial-sum write-backs (one per row per pass — CSR accumulates
    /// in-place in an output buffer every cycle).
    pub writebacks: u64,
}

impl CsrMatrix {
    /// Builds a CSR matrix from a dense one, storing only non-zeros.
    pub fn from_dense(dense: &Matrix<i8>) -> Self {
        let (rows, cols) = dense.shape();
        let mut row_ptr = Vec::with_capacity(rows + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        for r in 0..rows {
            for c in 0..cols {
                let v = dense[(r, c)];
                if v != 0 {
                    col_idx.push(c as u32);
                    values.push(v);
                }
            }
            row_ptr.push(values.len());
        }
        Self {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Logical `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Storage in bits: each non-zero pays `weight_bits` plus a full column
    /// index (`ceil(log2(cols))` bits — unlike N:M CSC, CSR cannot use a
    /// short offset because non-zeros are unaligned), plus the row-pointer
    /// array.
    pub fn storage_bits(&self, weight_bits: u32) -> u64 {
        let idx_bits = if self.cols <= 1 {
            1
        } else {
            usize::BITS - (self.cols - 1).leading_zeros()
        };
        let ptr_bits = 32u64 * (self.rows as u64 + 1);
        self.nnz() as u64 * (weight_bits as u64 + idx_bits as u64) + ptr_bits
    }

    /// Reconstructs the dense matrix.
    pub fn to_dense(&self) -> Matrix<i8> {
        let mut out = Matrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            for i in self.row_ptr[r]..self.row_ptr[r + 1] {
                out[(r, self.col_idx[i] as usize)] = self.values[i];
            }
        }
        out
    }

    /// `y = Wᵀ·x` in the same orientation as [`crate::CscMatrix::matvec`]:
    /// `y[c] = Σ_r W[r][c] · x[r]`.
    ///
    /// # Errors
    ///
    /// Returns [`DimensionError`] if `x.len() != rows`.
    pub fn matvec(&self, x: &[i32]) -> Result<Vec<i32>, DimensionError> {
        Ok(self.matvec_with_stats(x)?.0)
    }

    /// Like [`matvec`](Self::matvec) but also reports the gather /
    /// write-back traffic a row-major PIM mapping would pay.
    ///
    /// # Errors
    ///
    /// Returns [`DimensionError`] if `x.len() != rows`.
    #[allow(clippy::needless_range_loop)] // row index r addresses x and row_ptr
    pub fn matvec_with_stats(
        &self,
        x: &[i32],
    ) -> Result<(Vec<i32>, CsrTrafficStats), DimensionError> {
        if x.len() != self.rows {
            return Err(DimensionError {
                expected: self.rows,
                actual: x.len(),
            });
        }
        let mut y = vec![0i32; self.cols];
        let mut stats = CsrTrafficStats::default();
        for r in 0..self.rows {
            let begin = self.row_ptr[r];
            let end = self.row_ptr[r + 1];
            for i in begin..end {
                y[self.col_idx[i] as usize] += self.values[i] as i32 * x[r];
                stats.input_gathers += 1;
            }
            if end > begin {
                // Every non-empty row flushes its partial sums to the
                // output buffer (the per-cycle write-back the paper calls
                // out as CSR's cost on a row-word-line PIM).
                stats.writebacks += 1;
            }
        }
        Ok((y, stats))
    }
}

impl fmt::Display for CsrMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CsrMatrix {}x{} ({} nnz)",
            self.rows,
            self.cols,
            self.nnz()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::dense_matvec;

    fn sample() -> Matrix<i8> {
        Matrix::from_rows(vec![
            vec![3i8, 0, -1],
            vec![0, 5, 0],
            vec![0, 0, 0],
            vec![-2, 0, 9],
        ])
        .unwrap()
    }

    #[test]
    fn round_trip_preserves_structure() {
        let dense = sample();
        let csr = CsrMatrix::from_dense(&dense);
        assert_eq!(csr.to_dense(), dense);
        assert_eq!(csr.nnz(), 5);
    }

    #[test]
    fn matvec_matches_dense_reference() {
        let dense = sample();
        let csr = CsrMatrix::from_dense(&dense);
        let x = vec![1, -2, 3, 4];
        assert_eq!(csr.matvec(&x).unwrap(), dense_matvec(&dense, &x).unwrap());
    }

    #[test]
    fn matvec_rejects_wrong_length() {
        let csr = CsrMatrix::from_dense(&sample());
        assert!(csr.matvec(&[1]).is_err());
    }

    #[test]
    fn traffic_stats_count_gathers_and_writebacks() {
        let csr = CsrMatrix::from_dense(&sample());
        let (_, stats) = csr.matvec_with_stats(&[1, 1, 1, 1]).unwrap();
        assert_eq!(stats.input_gathers, 5); // one per nnz
        assert_eq!(stats.writebacks, 3); // rows 0, 1, 3 are non-empty
    }

    #[test]
    fn empty_matrix_works() {
        let dense: Matrix<i8> = Matrix::zeros(0, 0);
        let csr = CsrMatrix::from_dense(&dense);
        assert_eq!(csr.nnz(), 0);
        assert_eq!(csr.matvec(&[]).unwrap(), Vec::<i32>::new());
    }

    #[test]
    fn storage_uses_full_column_indices() {
        let dense = Matrix::from_fn(16, 256, |r, c| if (r + c) % 64 == 0 { 1i8 } else { 0 });
        let csr = CsrMatrix::from_dense(&dense);
        // 256 columns → 8 index bits per nnz vs CSC's short offsets.
        let bits = csr.storage_bits(8);
        assert_eq!(bits, csr.nnz() as u64 * (8 + 8) + 32 * (16 + 1));
    }

    #[test]
    fn display_is_informative() {
        let csr = CsrMatrix::from_dense(&sample());
        assert!(csr.to_string().contains("4x3"));
    }
}
