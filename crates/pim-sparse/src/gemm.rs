//! Reference GEMM kernels: the functional ground truth for everything else.
//!
//! All kernels share the PE orientation: weights are `(rows = reduction,
//! cols = outputs)`, so a matvec computes `y[c] = Σ_r W[r][c] · x[r]` —
//! inputs stream across array rows, outputs accumulate down array columns.
//!
//! [`bit_serial_matvec`] reproduces the SRAM PE's arithmetic exactly:
//! activations are decomposed into bit planes (two's-complement, MSB
//! negatively weighted), each plane contributes a 1-bit AND partial product
//! per weight, and a shift accumulator recombines the planes. Its result is
//! provably identical to [`dense_matvec`]; a property test pins that down.

use crate::mask::{MaskShapeError, NmMask};
use crate::matrix::Matrix;
use std::fmt;

pub use crate::csc::DimensionError;

/// Dense reference matvec with `i32` accumulation.
///
/// # Errors
///
/// Returns [`DimensionError`] if `x.len() != weights.rows()`.
#[allow(clippy::needless_range_loop)] // row index r addresses both operands
pub fn dense_matvec(weights: &Matrix<i8>, x: &[i32]) -> Result<Vec<i32>, DimensionError> {
    if x.len() != weights.rows() {
        return Err(DimensionError {
            expected: weights.rows(),
            actual: x.len(),
        });
    }
    let mut y = vec![0i32; weights.cols()];
    for r in 0..weights.rows() {
        let xr = x[r];
        if xr == 0 {
            continue;
        }
        let row = weights.row(r);
        for (c, &w) in row.iter().enumerate() {
            y[c] += w as i32 * xr;
        }
    }
    Ok(y)
}

/// Dense reference matmul: `(K×C)ᵀ · (K×B) = (C×B)` with `i32` accumulation.
///
/// # Errors
///
/// Returns [`DimensionError`] if the reduction dimensions disagree.
pub fn dense_matmul(weights: &Matrix<i8>, x: &Matrix<i32>) -> Result<Matrix<i32>, DimensionError> {
    if x.rows() != weights.rows() {
        return Err(DimensionError {
            expected: weights.rows(),
            actual: x.rows(),
        });
    }
    let mut out = Matrix::zeros(weights.cols(), x.cols());
    for b in 0..x.cols() {
        let xb = x.col(b);
        let y = dense_matvec(weights, &xb)?;
        for c in 0..weights.cols() {
            out[(c, b)] = y[c];
        }
    }
    Ok(out)
}

/// Applies a mask to a dense matrix (zeroing pruned entries); convenience
/// re-export of [`NmMask::apply`] for the common test pattern
/// `dense_matvec(&masked_dense(..)?, ..)`.
///
/// # Errors
///
/// Returns [`MaskShapeError`] if the shapes differ.
pub fn masked_dense(weights: &Matrix<i8>, mask: &NmMask) -> Result<Matrix<i8>, MaskShapeError> {
    mask.apply(weights)
}

/// Bit-serial matvec mirroring the SRAM PE arithmetic.
///
/// Activations are INT8 in two's complement. For bit plane `b` (LSB = 0),
/// each input contributes its bit `x[r]>>b & 1`; the in-array AND against
/// the weight produces the partial product, the adder tree sums the column,
/// and the shift accumulator adds `partial << b` — except the sign plane
/// (bit 7), which is subtracted (two's-complement weighting of −2⁷).
///
/// This walk is the retained **ground-truth oracle** for the PE
/// simulators: `pim-pe` executes matvecs through flat compiled kernels
/// (plain gather-multiply-accumulate over occupied slots), and its
/// property tests pin those kernels against this function bit for bit —
/// the bit-plane decomposition recombines to exactly `Σ w·x`, so the two
/// formulations must never disagree on any input.
///
/// # Errors
///
/// Returns [`DimensionError`] if `x.len() != weights.rows()`.
///
/// # Example
///
/// ```
/// use pim_sparse::Matrix;
/// use pim_sparse::gemm::{bit_serial_matvec, dense_matvec};
///
/// let w = Matrix::from_rows(vec![vec![3i8, -4], vec![-128, 127]])?;
/// let x = [-7i8, 100];
/// let serial = bit_serial_matvec(&w, &x)?;
/// let wide: Vec<i32> = x.iter().map(|&v| v as i32).collect();
/// assert_eq!(serial, dense_matvec(&w, &wide)?);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[allow(clippy::needless_range_loop)] // row index r addresses both operands
pub fn bit_serial_matvec(weights: &Matrix<i8>, x: &[i8]) -> Result<Vec<i32>, DimensionError> {
    if x.len() != weights.rows() {
        return Err(DimensionError {
            expected: weights.rows(),
            actual: x.len(),
        });
    }
    let mut acc = vec![0i64; weights.cols()];
    for bit in 0..8u32 {
        // Per-plane column sums (what one adder-tree pass produces).
        let mut plane = vec![0i64; weights.cols()];
        for r in 0..weights.rows() {
            if (x[r] as u8 >> bit) & 1 == 1 {
                for (c, &w) in weights.row(r).iter().enumerate() {
                    plane[c] += w as i64;
                }
            }
        }
        let weight = 1i64 << bit;
        for c in 0..weights.cols() {
            if bit == 7 {
                acc[c] -= plane[c] * weight; // sign plane
            } else {
                acc[c] += plane[c] * weight;
            }
        }
    }
    Ok(acc.into_iter().map(|v| v as i32).collect())
}

/// Floating-point dense matvec, used by the NN substrate's reference paths.
///
/// # Errors
///
/// Returns [`DimensionError`] if `x.len() != weights.rows()`.
#[allow(clippy::needless_range_loop)] // row index r addresses both operands
pub fn dense_matvec_f32(weights: &Matrix<f32>, x: &[f32]) -> Result<Vec<f32>, DimensionError> {
    if x.len() != weights.rows() {
        return Err(DimensionError {
            expected: weights.rows(),
            actual: x.len(),
        });
    }
    let mut y = vec![0f32; weights.cols()];
    for r in 0..weights.rows() {
        let xr = x[r];
        for (c, &w) in weights.row(r).iter().enumerate() {
            y[c] += w * xr;
        }
    }
    Ok(y)
}

/// Operation counts of a dense vs sparse matvec — the complexity reduction
/// the paper's Fig. 2 illustrates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpCounts {
    /// Multiply-accumulate operations performed.
    pub macs: u64,
    /// Weight operands fetched.
    pub weight_fetches: u64,
}

impl OpCounts {
    /// Op counts of a dense matvec on a `(rows × cols)` matrix.
    pub fn dense(rows: usize, cols: usize) -> Self {
        let ops = (rows * cols) as u64;
        Self {
            macs: ops,
            weight_fetches: ops,
        }
    }

    /// Op counts of an N:M sparse matvec: only stored slots are processed.
    pub fn sparse(csc: &crate::CscMatrix) -> Self {
        let ops = (csc.slots_per_col() * csc.cols()) as u64;
        Self {
            macs: ops,
            weight_fetches: ops,
        }
    }
}

impl fmt::Display for OpCounts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} MACs, {} weight fetches",
            self.macs, self.weight_fetches
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::NmPattern;
    use crate::prune::prune_magnitude;
    use crate::CscMatrix;

    #[test]
    fn dense_matvec_small_known_answer() {
        // W = [[1,2],[3,4]] (rows = reduction): y = Wᵀx.
        let w = Matrix::from_rows(vec![vec![1i8, 2], vec![3, 4]]).unwrap();
        let y = dense_matvec(&w, &[10, 100]).unwrap();
        assert_eq!(y, vec![310, 420]);
    }

    #[test]
    fn dense_matmul_matches_matvec_per_column() {
        let w = Matrix::from_fn(6, 4, |r, c| ((r * 5 + c * 3) % 17) as i8 - 8);
        let x = Matrix::from_fn(6, 3, |r, c| (r as i32 - c as i32) * 7);
        let out = dense_matmul(&w, &x).unwrap();
        for b in 0..3 {
            assert_eq!(out.col(b), dense_matvec(&w, &x.col(b)).unwrap());
        }
    }

    #[test]
    fn bit_serial_equals_dense_on_extremes() {
        let w = Matrix::from_rows(vec![vec![i8::MIN, i8::MAX], vec![-1, 1], vec![0, -77]]).unwrap();
        for x in [
            [i8::MIN, i8::MIN, i8::MIN],
            [i8::MAX, i8::MAX, i8::MAX],
            [0, -1, 1],
            [-128, 127, -64],
        ] {
            let wide: Vec<i32> = x.iter().map(|&v| v as i32).collect();
            assert_eq!(
                bit_serial_matvec(&w, &x).unwrap(),
                dense_matvec(&w, &wide).unwrap(),
                "x = {x:?}"
            );
        }
    }

    #[test]
    fn sparse_path_agrees_with_dense_on_masked_weights() {
        let w = Matrix::from_fn(32, 8, |r, c| (((r * 13 + c * 7) % 31) as i32 - 15) as i8);
        let pattern = NmPattern::one_of_eight();
        let mask = prune_magnitude(&w, pattern).unwrap();
        let csc = CscMatrix::compress(&w, &mask).unwrap();
        let x: Vec<i32> = (0..32).map(|i| i * 3 - 40).collect();
        assert_eq!(
            csc.matvec(&x).unwrap(),
            dense_matvec(&masked_dense(&w, &mask).unwrap(), &x).unwrap()
        );
    }

    #[test]
    fn op_counts_reflect_compression_factor() {
        let w = Matrix::from_fn(64, 8, |r, c| ((r + c) % 5) as i8);
        let pattern = NmPattern::one_of_four();
        let csc = CscMatrix::compress_auto(&w, pattern).unwrap();
        let dense = OpCounts::dense(64, 8);
        let sparse = OpCounts::sparse(&csc);
        assert_eq!(dense.macs, 512);
        assert_eq!(sparse.macs, 128); // 64/4 slots × 8 cols
        assert_eq!(dense.macs / sparse.macs, 4);
    }

    #[test]
    fn f32_matvec_reference() {
        let w = Matrix::from_rows(vec![vec![0.5f32, -1.0], vec![2.0, 0.25]]).unwrap();
        let y = dense_matvec_f32(&w, &[2.0, 4.0]).unwrap();
        assert!((y[0] - 9.0).abs() < 1e-6);
        assert!((y[1] - (-2.0 + 1.0)).abs() < 1e-6);
    }

    #[test]
    fn dimension_errors_are_reported() {
        let w: Matrix<i8> = Matrix::zeros(4, 2);
        assert!(dense_matvec(&w, &[1, 2]).is_err());
        assert!(bit_serial_matvec(&w, &[1, 2]).is_err());
        let wf: Matrix<f32> = Matrix::zeros(4, 2);
        assert!(dense_matvec_f32(&wf, &[1.0]).is_err());
        let x: Matrix<i32> = Matrix::zeros(3, 1);
        assert!(dense_matmul(&w, &x).is_err());
    }

    #[test]
    fn zero_activation_rows_are_skipped_consistently() {
        let w = Matrix::from_fn(8, 4, |r, c| (r * c % 7) as i8);
        let x = vec![0, 5, 0, -3, 0, 0, 2, 0];
        let full: Vec<i32> = x.clone();
        let y = dense_matvec(&w, &full).unwrap();
        // Recompute without the skip optimization.
        let mut expect = vec![0i32; 4];
        for r in 0..8 {
            for c in 0..4 {
                expect[c] += w[(r, c)] as i32 * x[r];
            }
        }
        assert_eq!(y, expect);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::pattern::NmPattern;
    use crate::prune::prune_magnitude;
    use crate::CscMatrix;
    use proptest::prelude::*;

    fn arb_matrix(max_rows: usize, max_cols: usize) -> impl Strategy<Value = Matrix<i8>> {
        (1..=max_rows, 1..=max_cols).prop_flat_map(|(r, c)| {
            proptest::collection::vec(any::<i8>(), r * c)
                .prop_map(move |data| Matrix::from_vec(r, c, data).expect("sized correctly"))
        })
    }

    proptest! {
        #[test]
        fn bit_serial_always_equals_dense(
            w in arb_matrix(24, 8),
            xs in proptest::collection::vec(any::<i8>(), 24),
        ) {
            let x = &xs[..w.rows()];
            let wide: Vec<i32> = x.iter().map(|&v| v as i32).collect();
            prop_assert_eq!(
                bit_serial_matvec(&w, x).unwrap(),
                dense_matvec(&w, &wide).unwrap()
            );
        }

        #[test]
        fn csc_matvec_always_equals_masked_dense(
            w in arb_matrix(40, 6),
            xs in proptest::collection::vec(-1000i32..1000, 40),
            pat_idx in 0usize..3,
        ) {
            let pattern = [
                NmPattern::one_of_four(),
                NmPattern::one_of_eight(),
                NmPattern::two_of_four(),
            ][pat_idx];
            let x = &xs[..w.rows()];
            let mask = prune_magnitude(&w, pattern).unwrap();
            let csc = CscMatrix::compress(&w, &mask).unwrap();
            let masked = masked_dense(&w, &mask).unwrap();
            prop_assert_eq!(
                csc.matvec(x).unwrap(),
                dense_matvec(&masked, x).unwrap()
            );
        }

        #[test]
        fn csc_decompress_is_masked_dense(
            w in arb_matrix(32, 5),
        ) {
            let pattern = NmPattern::two_of_four();
            let mask = prune_magnitude(&w, pattern).unwrap();
            let csc = CscMatrix::compress(&w, &mask).unwrap();
            prop_assert_eq!(csc.decompress(), mask.apply(&w).unwrap());
        }

        #[test]
        fn csr_matvec_always_equals_dense(
            w in arb_matrix(24, 8),
            xs in proptest::collection::vec(-1000i32..1000, 24),
        ) {
            let x = &xs[..w.rows()];
            let csr = crate::CsrMatrix::from_dense(&w);
            prop_assert_eq!(
                csr.matvec(x).unwrap(),
                dense_matvec(&w, x).unwrap()
            );
        }
    }
}
