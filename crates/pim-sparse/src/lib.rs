//! N:M structured sparsity, CSC/CSR encodings, and reference sparse kernels
//! for the MRAM-SRAM hybrid PIM accelerator (DAC'24 reproduction).
//!
//! The paper's PEs store and process **N:M structured-sparse** weights: out
//! of every `M` contiguous, aligned elements along the reduction dimension,
//! at most `N` are non-zero (NVIDIA Ampere popularized 2:4; the paper
//! evaluates 1:4 and 1:8 with the index field sized for up to `N:16`).
//! Weights are compressed in **compressed sparse column (CSC)** form because
//! CSC preserves the in-array multiplication structure and only breaks
//! accumulation, which the PE gates with per-row index comparators.
//!
//! This crate is the *functional ground truth*: the cycle-level PE
//! simulators in `pim-pe` must produce bit-identical results to the
//! reference kernels here, which in turn must equal the dense kernel on
//! masked weights. Property tests enforce both equalities.
//!
//! # Modules
//!
//! * [`pattern`] — the [`NmPattern`] type (N, M, index width).
//! * [`matrix`] — a minimal row-major [`Matrix`] container.
//! * [`prune`] — magnitude- and saliency-based N:M mask selection.
//! * [`permute`] — channel-permutation search for higher-quality masks
//!   (the paper's ref \[19\]).
//! * [`mask`] — [`NmMask`] application and validation.
//! * [`csc`] — the structured [`CscMatrix`] the PEs consume.
//! * [`csr`] — [`CsrMatrix`], the row-compressed dual (for the ablation).
//! * [`gemm`] — dense and sparse reference kernels (INT8 × INT8 → INT32).
//!
//! # Example
//!
//! ```
//! use pim_sparse::{CscMatrix, Matrix, NmPattern};
//! use pim_sparse::prune::prune_magnitude;
//! use pim_sparse::gemm::{dense_matvec, masked_dense};
//!
//! let pattern = NmPattern::new(1, 4)?;
//! let dense = Matrix::from_rows(vec![
//!     vec![3i8, -1, 0, 2],
//!     vec![0, 5, 1, 0],
//!     vec![7, 0, 0, -2],
//!     vec![0, 0, 4, 1],
//! ])?;
//! // Keep the largest-magnitude entry in every group of 4 down each column.
//! let mask = prune_magnitude(&dense, pattern)?;
//! let csc = CscMatrix::compress(&dense, &mask)?;
//! let x = vec![1i32, 2, 3, 4];
//! let sparse_y = csc.matvec(&x)?;
//! let dense_y = dense_matvec(&masked_dense(&dense, &mask)?, &x)?;
//! assert_eq!(sparse_y, dense_y);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod csc;
pub mod csr;
pub mod gemm;
pub mod mask;
pub mod matrix;
pub mod pattern;
pub mod permute;
pub mod prune;

pub use csc::CscMatrix;
pub use csr::CsrMatrix;
pub use mask::NmMask;
pub use matrix::Matrix;
pub use pattern::NmPattern;
