//! N:M sparsity masks.
//!
//! An [`NmMask`] is a boolean matrix paired with the [`NmPattern`] it
//! conforms to. Groups run **down each column** (along the reduction
//! dimension), matching the PE array layout where inputs stream across rows
//! and each array column accumulates one output neuron.

use crate::matrix::Matrix;
use crate::pattern::NmPattern;
use std::fmt;

/// A validated N:M mask: `true` entries are kept, `false` are pruned.
///
/// # Example
///
/// ```
/// use pim_sparse::{Matrix, NmMask, NmPattern};
///
/// let keep = Matrix::from_rows(vec![
///     vec![true, false],
///     vec![false, true],
///     vec![false, false],
///     vec![false, false],
/// ])?;
/// let mask = NmMask::new(keep, NmPattern::new(1, 4)?)?;
/// assert_eq!(mask.kept(), 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NmMask {
    keep: Matrix<bool>,
    pattern: NmPattern,
}

impl NmMask {
    /// Wraps a boolean matrix after verifying it satisfies `pattern`
    /// (at most `n` kept entries in every aligned `m`-group down each
    /// column; the final partial group, if any, is bounded the same way).
    ///
    /// # Errors
    ///
    /// Returns [`MaskViolationError`] naming the first offending group.
    pub fn new(keep: Matrix<bool>, pattern: NmPattern) -> Result<Self, MaskViolationError> {
        let m = pattern.m();
        for c in 0..keep.cols() {
            let mut g = 0;
            while g * m < keep.rows() {
                let start = g * m;
                let end = (start + m).min(keep.rows());
                let kept = (start..end).filter(|&r| keep[(r, c)]).count();
                if kept > pattern.n() {
                    return Err(MaskViolationError {
                        col: c,
                        group: g,
                        kept,
                        pattern,
                    });
                }
                g += 1;
            }
        }
        Ok(Self { keep, pattern })
    }

    /// A mask that keeps everything (only valid for a dense pattern).
    ///
    /// # Errors
    ///
    /// Returns [`MaskViolationError`] if `pattern` is not dense.
    pub fn all_kept(
        rows: usize,
        cols: usize,
        pattern: NmPattern,
    ) -> Result<Self, MaskViolationError> {
        Self::new(Matrix::from_fn(rows, cols, |_, _| true), pattern)
    }

    /// The pattern this mask conforms to.
    pub fn pattern(&self) -> NmPattern {
        self.pattern
    }

    /// The underlying boolean matrix.
    pub fn as_matrix(&self) -> &Matrix<bool> {
        &self.keep
    }

    /// `(rows, cols)` of the mask.
    pub fn shape(&self) -> (usize, usize) {
        self.keep.shape()
    }

    /// Whether position `(row, col)` is kept.
    pub fn is_kept(&self, row: usize, col: usize) -> bool {
        self.keep[(row, col)]
    }

    /// Total number of kept positions.
    pub fn kept(&self) -> usize {
        self.keep.as_slice().iter().filter(|&&b| b).count()
    }

    /// Measured density `kept / total` (≤ the pattern's nominal density).
    pub fn density(&self) -> f64 {
        if self.keep.is_empty() {
            0.0
        } else {
            self.kept() as f64 / self.keep.len() as f64
        }
    }

    /// Applies the mask to a same-shaped matrix, zeroing pruned entries.
    ///
    /// # Errors
    ///
    /// Returns [`MaskShapeError`] if the shapes differ.
    pub fn apply<T: Copy + Default>(&self, dense: &Matrix<T>) -> Result<Matrix<T>, MaskShapeError> {
        if dense.shape() != self.keep.shape() {
            return Err(MaskShapeError {
                mask: self.keep.shape(),
                matrix: dense.shape(),
            });
        }
        Ok(Matrix::from_fn(dense.rows(), dense.cols(), |r, c| {
            if self.keep[(r, c)] {
                dense[(r, c)]
            } else {
                T::default()
            }
        }))
    }

    /// Kept row indices within column `col`, group `group`, as offsets into
    /// the group (`0..m`). This is exactly what the hardware index field
    /// stores.
    pub fn group_offsets(&self, col: usize, group: usize) -> Vec<u8> {
        let m = self.pattern.m();
        let start = group * m;
        let end = (start + m).min(self.keep.rows());
        (start..end)
            .filter(|&r| self.keep[(r, col)])
            .map(|r| (r - start) as u8)
            .collect()
    }
}

/// Error: a boolean matrix violated its claimed N:M pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MaskViolationError {
    /// Column containing the violation.
    pub col: usize,
    /// Group index (along the rows) containing the violation.
    pub group: usize,
    /// Number of kept entries found in that group.
    pub kept: usize,
    /// The pattern that was violated.
    pub pattern: NmPattern,
}

impl fmt::Display for MaskViolationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "group {} of column {} keeps {} entries, exceeding pattern {}",
            self.group, self.col, self.kept, self.pattern
        )
    }
}

impl std::error::Error for MaskViolationError {}

/// Error: a mask was applied to a matrix of a different shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MaskShapeError {
    /// Mask shape.
    pub mask: (usize, usize),
    /// Matrix shape.
    pub matrix: (usize, usize),
}

impl fmt::Display for MaskShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "mask shape {:?} does not match matrix shape {:?}",
            self.mask, self.matrix
        )
    }
}

impl std::error::Error for MaskShapeError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn p14() -> NmPattern {
        NmPattern::one_of_four()
    }

    #[test]
    fn accepts_conforming_mask() {
        let keep = Matrix::from_fn(8, 2, |r, _| r % 4 == 0);
        let mask = NmMask::new(keep, p14()).unwrap();
        assert_eq!(mask.kept(), 4);
        assert!((mask.density() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn rejects_violating_mask() {
        // Two kept entries in the first group of column 0.
        let keep = Matrix::from_fn(4, 1, |r, _| r < 2);
        let err = NmMask::new(keep, p14()).unwrap_err();
        assert_eq!(err.col, 0);
        assert_eq!(err.group, 0);
        assert_eq!(err.kept, 2);
        assert!(err.to_string().contains("1:4"));
    }

    #[test]
    fn partial_tail_group_is_checked() {
        // 6 rows with m=4: tail group is rows 4..6.
        let keep = Matrix::from_fn(6, 1, |r, _| r >= 4);
        assert!(NmMask::new(keep, p14()).is_err());
        let keep = Matrix::from_fn(6, 1, |r, _| r == 5);
        assert!(NmMask::new(keep, p14()).is_ok());
    }

    #[test]
    fn all_kept_requires_dense_pattern() {
        assert!(NmMask::all_kept(4, 4, p14()).is_err());
        let dense = NmPattern::new(4, 4).unwrap();
        let mask = NmMask::all_kept(4, 4, dense).unwrap();
        assert_eq!(mask.kept(), 16);
    }

    #[test]
    fn apply_zeroes_pruned_entries() {
        let keep = Matrix::from_fn(4, 1, |r, _| r == 2);
        let mask = NmMask::new(keep, p14()).unwrap();
        let dense = Matrix::from_rows(vec![vec![10i8], vec![20], vec![30], vec![40]]).unwrap();
        let masked = mask.apply(&dense).unwrap();
        assert_eq!(masked.col(0), vec![0, 0, 30, 0]);
    }

    #[test]
    fn apply_rejects_shape_mismatch() {
        let mask = NmMask::new(Matrix::from_fn(4, 1, |_, _| false), p14()).unwrap();
        let dense: Matrix<i8> = Matrix::zeros(4, 2);
        let err = mask.apply(&dense).unwrap_err();
        assert_eq!(err.mask, (4, 1));
        assert_eq!(err.matrix, (4, 2));
    }

    #[test]
    fn group_offsets_match_hardware_index_semantics() {
        let pattern = NmPattern::new(2, 4).unwrap();
        let keep = Matrix::from_fn(8, 1, |r, _| r == 1 || r == 3 || r == 4);
        let mask = NmMask::new(keep, pattern).unwrap();
        assert_eq!(mask.group_offsets(0, 0), vec![1, 3]);
        assert_eq!(mask.group_offsets(0, 1), vec![0]);
    }

    #[test]
    fn empty_mask_density_is_zero() {
        let mask = NmMask::new(Matrix::from_rows(vec![]).unwrap(), p14()).unwrap();
        assert_eq!(mask.density(), 0.0);
    }
}
