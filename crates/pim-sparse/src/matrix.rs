//! A minimal row-major matrix container shared across the simulator stack.
//!
//! [`Matrix<T>`] is deliberately tiny: shape + flat `Vec<T>` with checked
//! constructors, element access, iteration, and transpose. The weight
//! convention throughout the workspace is **`rows` = reduction (input)
//! dimension, `cols` = output neurons**, matching how the PE arrays are
//! laid out (inputs stream across array rows, outputs accumulate down
//! array columns).

use std::fmt;
use std::ops::{Index, IndexMut};

/// Dense row-major matrix.
///
/// # Example
///
/// ```
/// use pim_sparse::Matrix;
///
/// let m = Matrix::from_rows(vec![vec![1, 2, 3], vec![4, 5, 6]])?;
/// assert_eq!(m.shape(), (2, 3));
/// assert_eq!(m[(1, 2)], 6);
/// let t = m.transposed();
/// assert_eq!(t.shape(), (3, 2));
/// assert_eq!(t[(2, 1)], 6);
/// # Ok::<(), pim_sparse::matrix::ShapeError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Matrix<T> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T: Copy + Default> Matrix<T> {
    /// Creates a matrix of the given shape filled with `T::default()`.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![T::default(); rows * cols],
        }
    }
}

impl<T: Copy> Matrix<T> {
    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<T>) -> Result<Self, ShapeError> {
        if data.len() != rows * cols {
            return Err(ShapeError {
                expected: rows * cols,
                actual: data.len(),
            });
        }
        Ok(Self { rows, cols, data })
    }

    /// Creates a matrix from nested row vectors.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the rows have inconsistent lengths.
    pub fn from_rows(rows: Vec<Vec<T>>) -> Result<Self, ShapeError> {
        let nrows = rows.len();
        let ncols = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(nrows * ncols);
        for row in &rows {
            if row.len() != ncols {
                return Err(ShapeError {
                    expected: ncols,
                    actual: row.len(),
                });
            }
            data.extend_from_slice(row);
        }
        Ok(Self {
            rows: nrows,
            cols: ncols,
            data,
        })
    }

    /// Creates a matrix by evaluating `f(row, col)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Checked element access.
    pub fn get(&self, row: usize, col: usize) -> Option<&T> {
        if row < self.rows && col < self.cols {
            Some(&self.data[row * self.cols + col])
        } else {
            None
        }
    }

    /// Borrow of one row as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of bounds.
    pub fn row(&self, row: usize) -> &[T] {
        assert!(row < self.rows, "row {row} out of bounds ({})", self.rows);
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Copies one column into a fresh vector.
    ///
    /// # Panics
    ///
    /// Panics if `col` is out of bounds.
    pub fn col(&self, col: usize) -> Vec<T> {
        assert!(col < self.cols, "col {col} out of bounds ({})", self.cols);
        (0..self.rows)
            .map(|r| self.data[r * self.cols + col])
            .collect()
    }

    /// Flat row-major view of the data.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable flat row-major view of the data.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consumes the matrix and returns its flat buffer.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Returns a transposed copy.
    pub fn transposed(&self) -> Self {
        Self::from_fn(self.cols, self.rows, |r, c| self[(c, r)])
    }

    /// Returns a new matrix with `f` applied elementwise.
    pub fn map<U: Copy>(&self, f: impl Fn(T) -> U) -> Matrix<U> {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Iterates over `((row, col), value)` pairs in row-major order.
    pub fn indexed_iter(&self) -> impl Iterator<Item = ((usize, usize), T)> + '_ {
        let cols = self.cols;
        self.data
            .iter()
            .enumerate()
            .map(move |(i, &v)| ((i / cols, i % cols), v))
    }
}

impl<T: Copy> Index<(usize, usize)> for Matrix<T> {
    type Output = T;

    /// # Panics
    ///
    /// Panics if the index is out of bounds.
    fn index(&self, (row, col): (usize, usize)) -> &T {
        assert!(
            row < self.rows && col < self.cols,
            "index ({row}, {col}) out of bounds for {}x{} matrix",
            self.rows,
            self.cols
        );
        &self.data[row * self.cols + col]
    }
}

impl<T: Copy> IndexMut<(usize, usize)> for Matrix<T> {
    fn index_mut(&mut self, (row, col): (usize, usize)) -> &mut T {
        assert!(
            row < self.rows && col < self.cols,
            "index ({row}, {col}) out of bounds for {}x{} matrix",
            self.rows,
            self.cols
        );
        &mut self.data[row * self.cols + col]
    }
}

/// Error returned when a buffer or row length disagrees with the declared
/// matrix shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShapeError {
    /// Length the shape requires.
    pub expected: usize,
    /// Length actually supplied.
    pub actual: usize,
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "buffer length {} does not match expected {}",
            self.actual, self.expected
        )
    }
}

impl std::error::Error for ShapeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_validates_length() {
        assert!(Matrix::from_vec(2, 2, vec![1, 2, 3]).is_err());
        let m = Matrix::from_vec(2, 2, vec![1, 2, 3, 4]).unwrap();
        assert_eq!(m[(0, 1)], 2);
        assert_eq!(m[(1, 0)], 3);
    }

    #[test]
    fn from_rows_validates_consistency() {
        assert!(Matrix::from_rows(vec![vec![1, 2], vec![3]]).is_err());
        let m = Matrix::from_rows(vec![vec![1, 2], vec![3, 4]]).unwrap();
        assert_eq!(m.shape(), (2, 2));
    }

    #[test]
    fn empty_matrix_is_fine() {
        let m: Matrix<i8> = Matrix::from_rows(vec![]).unwrap();
        assert!(m.is_empty());
        assert_eq!(m.shape(), (0, 0));
    }

    #[test]
    fn row_and_col_extractors() {
        let m = Matrix::from_rows(vec![vec![1, 2, 3], vec![4, 5, 6]]).unwrap();
        assert_eq!(m.row(1), &[4, 5, 6]);
        assert_eq!(m.col(2), vec![3, 6]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn row_out_of_bounds_panics() {
        let m: Matrix<i8> = Matrix::zeros(2, 2);
        let _ = m.row(5);
    }

    #[test]
    fn transpose_round_trips() {
        let m = Matrix::from_fn(3, 5, |r, c| (r * 10 + c) as i32);
        assert_eq!(m.transposed().transposed(), m);
        assert_eq!(m.transposed()[(4, 2)], m[(2, 4)]);
    }

    #[test]
    fn map_changes_element_type() {
        let m = Matrix::from_rows(vec![vec![1i8, -2], vec![3, -4]]).unwrap();
        let wide = m.map(|v| v as i32 * 100);
        assert_eq!(wide[(1, 1)], -400);
    }

    #[test]
    fn indexed_iter_walks_row_major() {
        let m = Matrix::from_rows(vec![vec![1, 2], vec![3, 4]]).unwrap();
        let items: Vec<_> = m.indexed_iter().collect();
        assert_eq!(
            items,
            vec![((0, 0), 1), ((0, 1), 2), ((1, 0), 3), ((1, 1), 4)]
        );
    }

    #[test]
    fn get_is_checked() {
        let m: Matrix<i8> = Matrix::zeros(2, 2);
        assert!(m.get(1, 1).is_some());
        assert!(m.get(2, 0).is_none());
        assert!(m.get(0, 2).is_none());
    }

    #[test]
    fn shape_error_displays() {
        let e = Matrix::<i8>::from_vec(2, 2, vec![0; 3]).unwrap_err();
        assert_eq!(
            e,
            ShapeError {
                expected: 4,
                actual: 3
            }
        );
        assert!(e.to_string().contains("does not match"));
    }
}
