//! The N:M structured sparsity pattern.
//!
//! An [`NmPattern`] says: *out of every `M` contiguous, aligned elements
//! along the reduction dimension, at most `N` are non-zero*. The PE's index
//! field is 4 bits wide (paper §3.1: "4 bit index range for up to N:16
//! structured sparsity"), so `M ≤ 16`; the pattern's
//! [`index_bits`](NmPattern::index_bits) reports how many of those bits a
//! given `M` actually needs.

use std::fmt;
use std::str::FromStr;

/// Maximum group size supported by the 4-bit hardware index field.
pub const MAX_GROUP: usize = 16;

/// An `N:M` structured sparsity pattern (at most `n` of every `m` aligned
/// elements non-zero).
///
/// # Example
///
/// ```
/// use pim_sparse::NmPattern;
///
/// let p = NmPattern::new(2, 4)?;
/// assert_eq!(p.density(), 0.5);
/// assert_eq!(p.index_bits(), 2);
/// assert_eq!(p.to_string(), "2:4");
/// # Ok::<(), pim_sparse::pattern::InvalidPatternError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NmPattern {
    n: usize,
    m: usize,
}

impl NmPattern {
    /// Creates a pattern keeping at most `n` of every `m` elements.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidPatternError`] if `n` is zero, `n > m`, or `m`
    /// exceeds the 4-bit index range ([`MAX_GROUP`]).
    pub fn new(n: usize, m: usize) -> Result<Self, InvalidPatternError> {
        if n == 0 {
            return Err(InvalidPatternError::ZeroN);
        }
        if n > m {
            return Err(InvalidPatternError::NExceedsM { n, m });
        }
        if m > MAX_GROUP {
            return Err(InvalidPatternError::GroupTooLarge { m });
        }
        Ok(Self { n, m })
    }

    /// The paper's high-sparsity configuration (87.5% zero).
    pub fn one_of_eight() -> Self {
        Self { n: 1, m: 8 }
    }

    /// The paper's moderate-sparsity configuration (75% zero).
    pub fn one_of_four() -> Self {
        Self { n: 1, m: 4 }
    }

    /// NVIDIA Ampere's 2:4 pattern (50% zero).
    pub fn two_of_four() -> Self {
        Self { n: 2, m: 4 }
    }

    /// Number of elements kept per group.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Group size.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Fraction of elements kept, `n / m`.
    pub fn density(&self) -> f64 {
        self.n as f64 / self.m as f64
    }

    /// Fraction of elements pruned, `1 − n/m`.
    pub fn sparsity(&self) -> f64 {
        1.0 - self.density()
    }

    /// Bits needed to index a position within one group,
    /// `ceil(log2(m))` (and 0 for the degenerate `m = 1`).
    pub fn index_bits(&self) -> u32 {
        usize::BITS - (self.m - 1).leading_zeros()
    }

    /// Whether the pattern is trivial (keeps everything).
    pub fn is_dense(&self) -> bool {
        self.n == self.m
    }

    /// Number of groups needed to cover `len` elements
    /// (`ceil(len / m)` — the tail group is zero-padded).
    pub fn groups_for(&self, len: usize) -> usize {
        len.div_ceil(self.m)
    }

    /// Number of compressed storage slots for `len` elements: `n` slots per
    /// group regardless of how many are actually non-zero (the hardware
    /// reserves fixed geometry).
    pub fn slots_for(&self, len: usize) -> usize {
        self.groups_for(len) * self.n
    }

    /// Storage ratio of the compressed form relative to dense, counting the
    /// index overhead: each kept weight costs `weight_bits + index_bits`.
    ///
    /// # Example
    ///
    /// ```
    /// use pim_sparse::NmPattern;
    /// let p = NmPattern::one_of_four();
    /// // 1 of 4 kept, each costing 8+2 bits vs 4×8 dense ⇒ 10/32.
    /// assert!((p.storage_ratio(8) - 10.0 / 32.0).abs() < 1e-12);
    /// ```
    pub fn storage_ratio(&self, weight_bits: u32) -> f64 {
        let kept = self.n as f64 * (weight_bits + self.index_bits()) as f64;
        let dense = self.m as f64 * weight_bits as f64;
        kept / dense
    }
}

impl fmt::Display for NmPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.n, self.m)
    }
}

impl FromStr for NmPattern {
    type Err = InvalidPatternError;

    /// Parses `"N:M"` notation, e.g. `"1:8"`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (n, m) = s
            .split_once(':')
            .ok_or_else(|| InvalidPatternError::Syntax(s.to_owned()))?;
        let n: usize = n
            .trim()
            .parse()
            .map_err(|_| InvalidPatternError::Syntax(s.to_owned()))?;
        let m: usize = m
            .trim()
            .parse()
            .map_err(|_| InvalidPatternError::Syntax(s.to_owned()))?;
        Self::new(n, m)
    }
}

/// Error constructing or parsing an [`NmPattern`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InvalidPatternError {
    /// `n` was zero (a pattern that keeps nothing is useless).
    ZeroN,
    /// `n` exceeded `m`.
    NExceedsM {
        /// Offending kept-count.
        n: usize,
        /// Offending group size.
        m: usize,
    },
    /// `m` exceeded the 4-bit hardware index range.
    GroupTooLarge {
        /// Offending group size.
        m: usize,
    },
    /// A string did not parse as `N:M`.
    Syntax(String),
}

impl fmt::Display for InvalidPatternError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::ZeroN => write!(f, "pattern must keep at least one element per group"),
            Self::NExceedsM { n, m } => {
                write!(f, "cannot keep {n} of every {m} elements")
            }
            Self::GroupTooLarge { m } => write!(
                f,
                "group size {m} exceeds the 4-bit index range (max {MAX_GROUP})"
            ),
            Self::Syntax(s) => write!(f, "expected N:M notation, got {s:?}"),
        }
    }
}

impl std::error::Error for InvalidPatternError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_presets() {
        assert_eq!(NmPattern::one_of_eight(), NmPattern::new(1, 8).unwrap());
        assert_eq!(NmPattern::one_of_four(), NmPattern::new(1, 4).unwrap());
        assert!((NmPattern::one_of_eight().sparsity() - 0.875).abs() < 1e-12);
        assert!((NmPattern::one_of_four().sparsity() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn index_bits_cover_the_group() {
        assert_eq!(NmPattern::new(1, 1).unwrap().index_bits(), 0);
        assert_eq!(NmPattern::new(1, 2).unwrap().index_bits(), 1);
        assert_eq!(NmPattern::new(1, 4).unwrap().index_bits(), 2);
        assert_eq!(NmPattern::new(3, 5).unwrap().index_bits(), 3);
        assert_eq!(NmPattern::new(1, 8).unwrap().index_bits(), 3);
        assert_eq!(NmPattern::new(1, 16).unwrap().index_bits(), 4);
    }

    #[test]
    fn rejects_invalid_patterns() {
        assert_eq!(NmPattern::new(0, 4), Err(InvalidPatternError::ZeroN));
        assert_eq!(
            NmPattern::new(5, 4),
            Err(InvalidPatternError::NExceedsM { n: 5, m: 4 })
        );
        assert_eq!(
            NmPattern::new(1, 32),
            Err(InvalidPatternError::GroupTooLarge { m: 32 })
        );
    }

    #[test]
    fn parses_and_displays() {
        let p: NmPattern = "2:4".parse().unwrap();
        assert_eq!(p, NmPattern::two_of_four());
        assert_eq!(p.to_string(), "2:4");
        let p: NmPattern = " 1 : 8 ".parse().unwrap();
        assert_eq!(p, NmPattern::one_of_eight());
        assert!("garbage".parse::<NmPattern>().is_err());
        assert!("3:99".parse::<NmPattern>().is_err());
    }

    #[test]
    fn group_and_slot_counts_round_up() {
        let p = NmPattern::new(2, 4).unwrap();
        assert_eq!(p.groups_for(8), 2);
        assert_eq!(p.groups_for(9), 3);
        assert_eq!(p.slots_for(9), 6);
        assert_eq!(p.groups_for(0), 0);
    }

    #[test]
    fn dense_pattern_is_detected() {
        assert!(NmPattern::new(4, 4).unwrap().is_dense());
        assert!(!NmPattern::two_of_four().is_dense());
    }

    #[test]
    fn storage_ratio_accounts_for_index_overhead() {
        let p = NmPattern::one_of_eight();
        // 1 kept × (8 + 3) bits over 8 × 8 dense bits.
        assert!((p.storage_ratio(8) - 11.0 / 64.0).abs() < 1e-12);
        // A dense pattern still pays the index overhead (it would not be
        // encoded in practice, but the formula stays consistent).
        let d = NmPattern::new(4, 4).unwrap();
        assert!(d.storage_ratio(8) > 1.0);
    }

    #[test]
    fn ordering_is_derivable() {
        // Ordering exists mainly so patterns can key BTreeMaps.
        let mut v = [NmPattern::two_of_four(), NmPattern::one_of_four()];
        v.sort();
        assert_eq!(v[0], NmPattern::one_of_four());
    }
}
