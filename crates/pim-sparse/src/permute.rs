//! Channel permutation for higher-quality N:M masks.
//!
//! The paper builds on N:M structured sparsity and cites Pool et al.,
//! *Channel Permutations for N:M Sparsity* (NeurIPS'21, the paper's
//! ref \[19\]): because the `M`-groups are aligned, *which rows share a
//! group* determines how much weight magnitude survives pruning. Permuting
//! the reduction dimension before grouping — and permuting the activations
//! identically at runtime, a free re-wiring of the PE's input word lines —
//! can retain substantially more magnitude at the same `N:M` budget.
//!
//! [`prune_magnitude_permuted`] runs a deterministic swap-based
//! hill-climb over row permutations, maximizing the retained `Σ|w|`.
//! The returned [`PermutedMask`] carries the permutation plus the mask in
//! permuted space; [`PermutedMask::permuted_weights`] and
//! [`PermutedMask::permute_input`] apply the same reordering to weights
//! and activations, preserving the matvec exactly:
//! `Wᵀx = (PW)ᵀ(Px)`.

use crate::mask::NmMask;
use crate::matrix::Matrix;
use crate::pattern::NmPattern;
use crate::prune::{prune_magnitude, PruneError, Score};

/// A permutation of the reduction dimension plus the N:M mask selected in
/// permuted space.
///
/// # Example
///
/// ```
/// use pim_sparse::{Matrix, NmPattern};
/// use pim_sparse::permute::prune_magnitude_permuted;
///
/// let w = Matrix::from_fn(16, 4, |r, c| ((r * 5 + c) % 13) as f32 - 6.0);
/// let plain_retained = {
///     use pim_sparse::prune::prune_magnitude;
///     let mask = prune_magnitude(&w, NmPattern::new(1, 4)?)?;
///     mask.apply(&w)?.as_slice().iter().map(|v| v.abs()).sum::<f32>()
/// };
/// let permuted = prune_magnitude_permuted(&w, NmPattern::new(1, 4)?, 64, 9)?;
/// assert!(permuted.retained_magnitude(&w) + 1e-6 >= plain_retained as f64);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PermutedMask {
    permutation: Vec<usize>,
    mask: NmMask,
}

impl PermutedMask {
    /// The row permutation: permuted row `i` holds original row
    /// `permutation[i]`.
    pub fn permutation(&self) -> &[usize] {
        &self.permutation
    }

    /// The mask in permuted space.
    pub fn mask(&self) -> &NmMask {
        &self.mask
    }

    /// Applies the permutation to a weight matrix (rows reordered).
    ///
    /// # Panics
    ///
    /// Panics if the row count differs from the permutation length.
    pub fn permuted_weights<T: Copy>(&self, w: &Matrix<T>) -> Matrix<T> {
        assert_eq!(w.rows(), self.permutation.len(), "row count mismatch");
        Matrix::from_fn(w.rows(), w.cols(), |r, c| w[(self.permutation[r], c)])
    }

    /// Applies the permutation to an activation vector.
    ///
    /// # Panics
    ///
    /// Panics if the length differs from the permutation length.
    pub fn permute_input<T: Copy>(&self, x: &[T]) -> Vec<T> {
        assert_eq!(x.len(), self.permutation.len(), "length mismatch");
        self.permutation.iter().map(|&i| x[i]).collect()
    }

    /// Total `|w|` surviving the mask (in permuted space) — the objective
    /// the permutation search maximizes.
    pub fn retained_magnitude<T: Score>(&self, w: &Matrix<T>) -> f64 {
        let pw = self.permuted_weights(w);
        let mut total = 0.0;
        for ((r, c), v) in pw.indexed_iter() {
            if self.mask.is_kept(r, c) {
                total += v.score();
            }
        }
        total
    }
}

/// Retained `Σ|w|` of plain (identity-permutation) magnitude pruning.
fn retained_under(w: &Matrix<f64>, perm: &[usize], pattern: NmPattern) -> f64 {
    // Per column: per aligned group of permuted rows, keep the top-N
    // scores. Operates on precomputed |w| to keep the hill-climb cheap.
    let m = pattern.m();
    let n = pattern.n();
    let mut total = 0.0;
    for c in 0..w.cols() {
        let mut start = 0;
        while start < w.rows() {
            let end = (start + m).min(w.rows());
            let mut scores: Vec<f64> = (start..end).map(|r| w[(perm[r], c)]).collect();
            scores.sort_by(|a, b| b.partial_cmp(a).expect("finite magnitudes"));
            total += scores.iter().take(n).sum::<f64>();
            start = end;
        }
    }
    total
}

/// Magnitude pruning with a permutation hill-climb: tries `candidates`
/// deterministic row swaps (seeded), keeping those that increase the
/// retained magnitude, then selects the N:M mask in permuted space.
///
/// # Errors
///
/// Returns [`PruneError::Empty`] for an empty matrix.
pub fn prune_magnitude_permuted<T: Score>(
    weights: &Matrix<T>,
    pattern: NmPattern,
    candidates: usize,
    seed: u64,
) -> Result<PermutedMask, PruneError> {
    if weights.is_empty() {
        return Err(PruneError::Empty);
    }
    let abs = weights.map(|v| v.score());
    let rows = weights.rows();
    let mut perm: Vec<usize> = (0..rows).collect();
    let mut best = retained_under(&abs, &perm, pattern);

    // Deterministic SplitMix64 candidate generator.
    let mut state = seed.wrapping_add(0x9E3779B97F4A7C15);
    let mut next = move || {
        state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    };

    if rows > 1 {
        for _ in 0..candidates {
            let a = (next() % rows as u64) as usize;
            let b = (next() % rows as u64) as usize;
            if a == b || a / pattern.m() == b / pattern.m() {
                continue; // same group: swap changes nothing
            }
            perm.swap(a, b);
            let score = retained_under(&abs, &perm, pattern);
            if score > best {
                best = score;
            } else {
                perm.swap(a, b); // revert
            }
        }
    }

    let permuted = Matrix::from_fn(rows, weights.cols(), |r, c| weights[(perm[r], c)]);
    let mask = prune_magnitude(&permuted, pattern)?;
    Ok(PermutedMask {
        permutation: perm,
        mask,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::{dense_matvec, masked_dense};

    /// An adversarial matrix for aligned grouping: magnitudes cluster so
    /// whole groups are large or small — exactly where permutation wins.
    fn clustered(rows: usize, cols: usize) -> Matrix<f32> {
        Matrix::from_fn(rows, cols, |r, c| {
            let big = (r / 4) % 2 == 0;
            let base = if big { 10.0 } else { 0.5 };
            base + ((r * 7 + c * 3) % 5) as f32 * 0.1
        })
    }

    #[test]
    fn permutation_retains_at_least_as_much_as_identity() {
        let w = clustered(32, 8);
        let pattern = NmPattern::one_of_four();
        let plain = prune_magnitude(&w, pattern).unwrap();
        let plain_retained: f64 = {
            let masked = plain.apply(&w).unwrap();
            masked.as_slice().iter().map(|v| v.abs() as f64).sum()
        };
        let permuted = prune_magnitude_permuted(&w, pattern, 200, 3).unwrap();
        assert!(permuted.retained_magnitude(&w) >= plain_retained - 1e-9);
    }

    #[test]
    fn permutation_strictly_wins_on_clustered_magnitudes() {
        // Groups of all-large rows waste slots; mixing them with all-small
        // groups must strictly increase the retained magnitude.
        let w = clustered(64, 4);
        let pattern = NmPattern::one_of_four();
        let plain = prune_magnitude(&w, pattern).unwrap();
        let plain_retained: f64 = plain
            .apply(&w)
            .unwrap()
            .as_slice()
            .iter()
            .map(|v| v.abs() as f64)
            .sum();
        let permuted = prune_magnitude_permuted(&w, pattern, 2000, 5).unwrap();
        assert!(
            permuted.retained_magnitude(&w) > plain_retained * 1.05,
            "permuted {} vs plain {plain_retained}",
            permuted.retained_magnitude(&w)
        );
    }

    #[test]
    fn matvec_is_preserved_under_joint_permutation() {
        // Wᵀx over kept entries == (PW masked)ᵀ (Px).
        let wf = clustered(24, 6);
        let w8 = wf.map(|v| (v * 2.0) as i8);
        let pattern = NmPattern::two_of_four();
        let permuted = prune_magnitude_permuted(&w8, pattern, 300, 7).unwrap();

        let pw = permuted.permuted_weights(&w8);
        let masked_pw = masked_dense(&pw, permuted.mask()).unwrap();
        let x: Vec<i32> = (0..24).map(|i| i * 3 - 36).collect();
        let px = permuted.permute_input(&x);

        // Reference: apply the same mask pulled back to original space.
        let mut masked_orig = Matrix::zeros(24, 6);
        for r in 0..24 {
            for c in 0..6 {
                if permuted.mask().is_kept(r, c) {
                    masked_orig[(permuted.permutation()[r], c)] =
                        w8[(permuted.permutation()[r], c)];
                }
            }
        }
        assert_eq!(
            dense_matvec(&masked_pw, &px).unwrap(),
            dense_matvec(&masked_orig, &x).unwrap()
        );
    }

    #[test]
    fn permutation_is_a_bijection() {
        let w = clustered(40, 3);
        let permuted = prune_magnitude_permuted(&w, NmPattern::one_of_eight(), 500, 11).unwrap();
        let mut seen = [false; 40];
        for &i in permuted.permutation() {
            assert!(!seen[i], "duplicate index {i}");
            seen[i] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn deterministic_per_seed() {
        let w = clustered(32, 4);
        let a = prune_magnitude_permuted(&w, NmPattern::one_of_four(), 300, 1).unwrap();
        let b = prune_magnitude_permuted(&w, NmPattern::one_of_four(), 300, 1).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn zero_candidates_degenerates_to_identity() {
        let w = clustered(16, 2);
        let permuted = prune_magnitude_permuted(&w, NmPattern::one_of_four(), 0, 0).unwrap();
        let identity: Vec<usize> = (0..16).collect();
        assert_eq!(permuted.permutation(), identity.as_slice());
    }

    #[test]
    fn empty_matrix_is_rejected() {
        let w: Matrix<f32> = Matrix::from_rows(vec![]).unwrap();
        assert_eq!(
            prune_magnitude_permuted(&w, NmPattern::one_of_four(), 10, 0),
            Err(PruneError::Empty)
        );
    }
}
