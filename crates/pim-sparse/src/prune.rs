//! N:M mask selection (pruning criteria).
//!
//! The paper selects masks by "a one-epoch gradient calculation across all
//! weights … to identify the most crucial N weights among every consecutive
//! M weights, based on magnitude" (§5.1). Two criteria are provided:
//!
//! * [`prune_magnitude`] — keep the largest-|w| entries per group (the
//!   fine-tuning baseline and what's used when no gradient is available);
//! * [`prune_saliency`] — keep the largest `|w·g|` entries per group, where
//!   `g` is an accumulated gradient (first-order Taylor saliency, the
//!   paper's one-epoch gradient pass).
//!
//! Both work on any element type that exposes a non-negative score, and are
//! deterministic: ties break toward the lower row index, which keeps
//! compressed layouts reproducible across runs.

use crate::mask::NmMask;
use crate::matrix::Matrix;
use crate::pattern::NmPattern;
use std::fmt;

/// Keeps the `n` largest-magnitude entries of every aligned `m`-group down
/// each column of `weights`.
///
/// Entries equal to zero are never kept in preference to a non-zero entry,
/// and groups with fewer than `n` non-zero entries keep only the non-zeros
/// (the mask is allowed to be sparser than the pattern).
///
/// # Errors
///
/// Propagates [`PruneError`] if the matrix is empty.
///
/// # Example
///
/// ```
/// use pim_sparse::{Matrix, NmPattern};
/// use pim_sparse::prune::prune_magnitude;
///
/// let w = Matrix::from_rows(vec![vec![1i8], vec![-9], vec![3], vec![0]])?;
/// let mask = prune_magnitude(&w, NmPattern::new(1, 4)?)?;
/// assert!(mask.is_kept(1, 0)); // -9 has the largest magnitude
/// assert_eq!(mask.kept(), 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn prune_magnitude<T: Score>(
    weights: &Matrix<T>,
    pattern: NmPattern,
) -> Result<NmMask, PruneError> {
    prune_by(weights, pattern, |w, _| w.score())
}

/// Keeps the `n` largest first-order-saliency (`|w · g|`) entries of every
/// group, where `grads` holds the gradient accumulated over the paper's
/// one-epoch calibration pass.
///
/// # Errors
///
/// Returns [`PruneError::ShapeMismatch`] if `weights` and `grads` differ in
/// shape, or [`PruneError::Empty`] if the matrix is empty.
pub fn prune_saliency<T: Score, G: Score>(
    weights: &Matrix<T>,
    grads: &Matrix<G>,
    pattern: NmPattern,
) -> Result<NmMask, PruneError> {
    if weights.shape() != grads.shape() {
        return Err(PruneError::ShapeMismatch {
            weights: weights.shape(),
            grads: grads.shape(),
        });
    }
    prune_by(weights, pattern, |w, (r, c)| {
        w.score() * grads[(r, c)].score()
    })
}

/// Generic group-top-`n` selection with a custom scoring closure.
fn prune_by<T: Score>(
    weights: &Matrix<T>,
    pattern: NmPattern,
    score: impl Fn(T, (usize, usize)) -> f64,
) -> Result<NmMask, PruneError> {
    if weights.is_empty() {
        return Err(PruneError::Empty);
    }
    let m = pattern.m();
    let n = pattern.n();
    let mut keep = Matrix::from_fn(weights.rows(), weights.cols(), |_, _| false);
    for c in 0..weights.cols() {
        let mut start = 0;
        while start < weights.rows() {
            let end = (start + m).min(weights.rows());
            // Score the group; exclude exact zeros (keeping a zero wastes a
            // compressed slot and changes nothing numerically).
            let mut scored: Vec<(usize, f64)> = (start..end)
                .map(|r| (r, score(weights[(r, c)], (r, c))))
                .filter(|&(_, s)| s > 0.0)
                .collect();
            // Sort by descending score; stable tie-break on row index.
            scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
            for &(r, _) in scored.iter().take(n) {
                keep[(r, c)] = true;
            }
            start = end;
        }
    }
    NmMask::new(keep, pattern).map_err(|_| {
        // Unreachable by construction: we never keep more than n per group.
        PruneError::Empty
    })
}

/// Types that expose a non-negative pruning score (absolute magnitude).
pub trait Score: Copy {
    /// Non-negative magnitude used to rank entries within a group.
    fn score(self) -> f64;
}

impl Score for i8 {
    fn score(self) -> f64 {
        (self as f64).abs()
    }
}

impl Score for i32 {
    fn score(self) -> f64 {
        (self as f64).abs()
    }
}

impl Score for f32 {
    fn score(self) -> f64 {
        (self as f64).abs()
    }
}

impl Score for f64 {
    fn score(self) -> f64 {
        self.abs()
    }
}

/// Error selecting a pruning mask.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PruneError {
    /// The weight matrix was empty.
    Empty,
    /// Weight and gradient shapes disagreed.
    ShapeMismatch {
        /// Shape of the weight matrix.
        weights: (usize, usize),
        /// Shape of the gradient matrix.
        grads: (usize, usize),
    },
}

impl fmt::Display for PruneError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Empty => write!(f, "cannot prune an empty matrix"),
            Self::ShapeMismatch { weights, grads } => write!(
                f,
                "weight shape {weights:?} does not match gradient shape {grads:?}"
            ),
        }
    }
}

impl std::error::Error for PruneError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn magnitude_keeps_largest_per_group() {
        let w = Matrix::from_rows(vec![
            vec![1i8, -8],
            vec![-9, 2],
            vec![3, 1],
            vec![0, -3],
            vec![5, 0],
            vec![6, 7],
            vec![-7, 1],
            vec![2, 2],
        ])
        .unwrap();
        let mask = prune_magnitude(&w, NmPattern::one_of_four()).unwrap();
        // Column 0: groups {1,-9,3,0} → keep -9 (row 1); {5,6,-7,2} → keep -7 (row 6).
        assert!(mask.is_kept(1, 0));
        assert!(mask.is_kept(6, 0));
        // Column 1: {-8,2,1,-3} → keep -8 (row 0); {0,7,1,2} → keep 7 (row 5).
        assert!(mask.is_kept(0, 1));
        assert!(mask.is_kept(5, 1));
        assert_eq!(mask.kept(), 4);
    }

    #[test]
    fn two_of_four_keeps_two() {
        let w = Matrix::from_rows(vec![vec![4i8], vec![-1], vec![3], vec![2]]).unwrap();
        let mask = prune_magnitude(&w, NmPattern::two_of_four()).unwrap();
        assert!(mask.is_kept(0, 0) && mask.is_kept(2, 0));
        assert_eq!(mask.kept(), 2);
    }

    #[test]
    fn zeros_are_never_kept() {
        let w = Matrix::from_rows(vec![vec![0i8], vec![0], vec![0], vec![1]]).unwrap();
        let mask = prune_magnitude(&w, NmPattern::two_of_four()).unwrap();
        assert_eq!(mask.kept(), 1);
        assert!(mask.is_kept(3, 0));
    }

    #[test]
    fn all_zero_group_keeps_nothing() {
        let w: Matrix<i8> = Matrix::zeros(8, 3);
        let mask = prune_magnitude(&w, NmPattern::one_of_four()).unwrap();
        assert_eq!(mask.kept(), 0);
    }

    #[test]
    fn ties_break_toward_lower_row() {
        let w = Matrix::from_rows(vec![vec![5i8], vec![-5], vec![5], vec![5]]).unwrap();
        let mask = prune_magnitude(&w, NmPattern::one_of_four()).unwrap();
        assert!(mask.is_kept(0, 0));
        assert_eq!(mask.kept(), 1);
    }

    #[test]
    fn saliency_overrides_raw_magnitude() {
        let w = Matrix::from_rows(vec![vec![8.0f32], vec![2.0], vec![1.0], vec![1.0]]).unwrap();
        // Large gradient on the small weight flips the choice.
        let g = Matrix::from_rows(vec![vec![0.01f32], vec![100.0], vec![0.0], vec![0.0]]).unwrap();
        let mask = prune_saliency(&w, &g, NmPattern::one_of_four()).unwrap();
        assert!(mask.is_kept(1, 0));
        assert!(!mask.is_kept(0, 0));
    }

    #[test]
    fn saliency_rejects_shape_mismatch() {
        let w: Matrix<f32> = Matrix::zeros(4, 1);
        let g: Matrix<f32> = Matrix::zeros(4, 2);
        assert!(matches!(
            prune_saliency(&w, &g, NmPattern::one_of_four()),
            Err(PruneError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn empty_matrix_is_an_error() {
        let w: Matrix<i8> = Matrix::from_rows(vec![]).unwrap();
        assert_eq!(
            prune_magnitude(&w, NmPattern::one_of_four()),
            Err(PruneError::Empty)
        );
    }

    #[test]
    fn tail_group_shorter_than_m_is_pruned_correctly() {
        // 6 rows with m = 4: the tail group has rows 4..6.
        let w = Matrix::from_rows(vec![
            vec![1i8],
            vec![2],
            vec![3],
            vec![4],
            vec![-6],
            vec![5],
        ])
        .unwrap();
        let mask = prune_magnitude(&w, NmPattern::one_of_four()).unwrap();
        assert!(mask.is_kept(3, 0));
        assert!(mask.is_kept(4, 0));
        assert_eq!(mask.kept(), 2);
    }

    #[test]
    fn resulting_mask_always_validates() {
        // Randomish deterministic matrix; the produced mask must satisfy the
        // pattern by construction.
        let w = Matrix::from_fn(64, 16, |r, c| ((r * 31 + c * 17) % 23) as i8 - 11);
        for pattern in [
            NmPattern::one_of_four(),
            NmPattern::one_of_eight(),
            NmPattern::two_of_four(),
            NmPattern::new(4, 16).unwrap(),
        ] {
            let mask = prune_magnitude(&w, pattern).unwrap();
            assert!(mask.density() <= pattern.density() + 1e-12);
        }
    }
}
