//! # pim-telemetry — metrics, tracing, and Prometheus exposition
//!
//! The rest of the workspace reports *end-of-run* ledgers (`PeStats`,
//! `RuntimeStats`, `LearnReport`); this crate makes the same quantities
//! observable **mid-run** and attributes wall-clock time to pipeline
//! stages. It is deliberately small and `std`-only:
//!
//! * **[`TelemetryRegistry`]** — a lock-cheap metrics registry. Metric
//!   *registration* (rare) takes a mutex; metric *updates* (hot) are
//!   plain atomics on cloned handles: [`Counter`] (monotonic, f64),
//!   [`Gauge`] (set/add), and [`Histogram`] (fixed buckets chosen at
//!   registration). [`TelemetryRegistry::render_prometheus`] renders the
//!   whole registry in the Prometheus text exposition format.
//! * **[`Tracer`]** — a span/event recorder backed by a bounded ring
//!   buffer: when full, the oldest events are dropped (and counted), so
//!   tracing never grows without bound and never blocks the hot path for
//!   longer than a queue push. [`TraceDump`] renders a snapshot as JSONL
//!   for offline inspection.
//! * **[`Telemetry`]** — the bundle the other crates accept: one shared
//!   registry plus one shared tracer behind an `Arc`.
//!
//! Counter updates use compare-and-swap addition on `f64` bit patterns.
//! A *single-threaded* sequence of `add` calls therefore accumulates with
//! exactly the same floating-point rounding as the `+=` chains in the
//! simulator ledgers — which is what lets the integration tests assert
//! the energy counters match `PeStats` **bit-exactly** (multi-threaded
//! interleavings reorder the additions and agree only up to f64
//! associativity).
//!
//! # Example
//!
//! ```
//! use pim_telemetry::Telemetry;
//!
//! let telemetry = Telemetry::new();
//! let served = telemetry.registry.counter("requests_total", "Requests served");
//! served.inc();
//! let mut span = telemetry.tracer.span("serve.batch");
//! span.attr("batch_size", 4);
//! span.finish();
//! let text = telemetry.registry.render_prometheus();
//! assert!(text.contains("requests_total 1"));
//! assert_eq!(telemetry.tracer.snapshot().len(), 1);
//! ```

pub mod metrics;
pub mod trace;

pub use metrics::{
    exponential_buckets, Counter, Gauge, Histogram, HistogramSnapshot, MetricKind,
    TelemetryRegistry,
};
pub use trace::{ActiveSpan, TraceDump, TraceEvent, Tracer};

use std::sync::Arc;

/// Default ring-buffer capacity of [`Telemetry::new`]'s tracer.
pub const DEFAULT_TRACE_CAPACITY: usize = 4096;

/// The bundle the instrumented crates accept: one metrics registry plus
/// one span tracer, shared behind an `Arc`.
#[derive(Debug)]
pub struct Telemetry {
    /// The metrics registry (counters, gauges, histograms).
    pub registry: TelemetryRegistry,
    /// The span/event ring buffer.
    pub tracer: Tracer,
}

impl Telemetry {
    /// A fresh bundle with the [`DEFAULT_TRACE_CAPACITY`] ring buffer.
    pub fn new() -> Arc<Self> {
        Self::with_trace_capacity(DEFAULT_TRACE_CAPACITY)
    }

    /// A fresh bundle whose tracer retains at most `capacity` events.
    pub fn with_trace_capacity(capacity: usize) -> Arc<Self> {
        Arc::new(Self {
            registry: TelemetryRegistry::new(),
            tracer: Tracer::new(capacity),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bundle_shares_registry_and_tracer() {
        let t = Telemetry::new();
        let c = t.registry.counter("x_total", "x");
        c.add(2.5);
        assert_eq!(
            t.registry.counter("x_total", "x").value(),
            2.5,
            "get-or-register returns the same underlying cell"
        );
        t.tracer.event("boot", &[]);
        assert_eq!(t.tracer.snapshot().len(), 1);
    }
}
