//! The lock-cheap metrics registry and its Prometheus text exposition.
//!
//! Registration (naming a metric, choosing histogram buckets) is rare and
//! takes the registry mutex; updates are atomic operations on cloned
//! handles and never touch the registry again. Handles are `Clone` and
//! cheap to pass around — clones share the same underlying cells, so a
//! worker pool incrementing a cloned [`Counter`] is incrementing *the*
//! counter.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// An atomic `f64` cell (bit-pattern CAS on an `AtomicU64`).
#[derive(Debug, Default)]
struct Cell(AtomicU64);

impl Cell {
    fn add(&self, v: f64) {
        let mut current = self.0.load(Ordering::Relaxed);
        loop {
            let next = f64::from_bits(current) + v;
            match self.0.compare_exchange_weak(
                current,
                next.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(actual) => current = actual,
            }
        }
    }

    fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// A monotonically increasing metric (requests served, picojoules spent).
///
/// Backed by an `f64` so energy and other fractional totals accumulate
/// with the exact rounding of the simulator ledgers' `+=` chains;
/// integer counts are exact up to 2^53.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    cell: Arc<Cell>,
}

impl Counter {
    /// Adds 1.
    pub fn inc(&self) {
        self.add(1.0);
    }

    /// Adds `v` (must be non-negative — counters are monotonic).
    pub fn add(&self, v: f64) {
        debug_assert!(v >= 0.0, "counter decremented by {v}");
        self.cell.add(v);
    }

    /// Current value.
    pub fn value(&self) -> f64 {
        self.cell.get()
    }
}

/// A metric that can move both ways (queue depth, budget fraction).
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    cell: Arc<Cell>,
}

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: f64) {
        self.cell.set(v);
    }

    /// Adds `v` (may be negative).
    pub fn add(&self, v: f64) {
        self.cell.add(v);
    }

    /// Current value.
    pub fn value(&self) -> f64 {
        self.cell.get()
    }
}

/// A fixed-bucket histogram (bucket bounds chosen at registration).
///
/// Observation cost is a linear scan of the bounds (histograms here have
/// ~a dozen buckets) plus three atomic updates. There is no per-sample
/// allocation and no lock.
#[derive(Debug, Clone)]
pub struct Histogram {
    inner: Arc<HistogramCore>,
}

#[derive(Debug)]
struct HistogramCore {
    /// Finite upper bounds, strictly ascending. The implicit `+Inf`
    /// bucket lives at `counts[bounds.len()]`.
    bounds: Vec<f64>,
    counts: Vec<AtomicU64>,
    sum: Cell,
    count: AtomicU64,
}

impl Histogram {
    fn new(bounds: &[f64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]) && bounds.iter().all(|b| b.is_finite()),
            "histogram bounds must be finite and strictly ascending: {bounds:?}"
        );
        Self {
            inner: Arc::new(HistogramCore {
                bounds: bounds.to_vec(),
                counts: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
                sum: Cell::default(),
                count: AtomicU64::new(0),
            }),
        }
    }

    /// Records one sample.
    pub fn observe(&self, v: f64) {
        let core = &*self.inner;
        let idx = core
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(core.bounds.len());
        core.counts[idx].fetch_add(1, Ordering::Relaxed);
        core.sum.add(v);
        core.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Total samples observed.
    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed samples.
    pub fn sum(&self) -> f64 {
        self.inner.sum.get()
    }

    /// Mean sample (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() / n as f64
        }
    }

    /// Upper bound of the bucket containing the `q`-quantile (`q` in
    /// `[0, 1]`) — a bucketed over-estimate, good enough for live
    /// dashboards. Samples past the last finite bound report that bound.
    /// Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        let core = &*self.inner;
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let target = (q * total as f64).ceil().max(1.0) as u64;
        let mut cumulative = 0u64;
        for (i, c) in core.counts.iter().enumerate() {
            cumulative += c.load(Ordering::Relaxed);
            if cumulative >= target {
                return core.bounds[i.min(core.bounds.len() - 1)];
            }
        }
        core.bounds[core.bounds.len() - 1]
    }

    /// Per-bucket counts (finite buckets then the `+Inf` bucket), for
    /// rendering.
    fn bucket_counts(&self) -> Vec<u64> {
        self.inner
            .counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// A point-in-time copy of the cumulative state. Two snapshots of the
    /// same histogram can be differenced ([`HistogramSnapshot::since`]) to
    /// recover the distribution of *just the window between them* — the
    /// read side a pressure sampler needs from a forever-cumulative
    /// histogram.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.inner.bounds.clone(),
            counts: self.bucket_counts(),
            sum: self.sum(),
            count: self.count(),
        }
    }
}

/// A point-in-time copy of a [`Histogram`]'s cumulative buckets.
///
/// Supports the same bucketed [`quantile`](Self::quantile) estimate as the
/// live histogram, plus windowing: `later.since(&earlier)` is the
/// distribution of the samples observed between the two snapshots.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Finite upper bounds; the `+Inf` bucket is `counts[bounds.len()]`.
    bounds: Vec<f64>,
    counts: Vec<u64>,
    sum: f64,
    count: u64,
}

impl HistogramSnapshot {
    /// Total samples in the snapshot (window).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of the samples in the snapshot (window).
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean sample (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Upper bound of the bucket containing the `q`-quantile — the same
    /// bucketed over-estimate as [`Histogram::quantile`]. Returns 0 when
    /// the snapshot is empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut cumulative = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            cumulative += c;
            if cumulative >= target {
                return self.bounds[i.min(self.bounds.len() - 1)];
            }
        }
        self.bounds[self.bounds.len() - 1]
    }

    /// The window between `earlier` and `self`: bucket-wise saturating
    /// difference (both snapshots must come from the same histogram, so
    /// counts only ever grow; saturation guards a mismatched pair instead
    /// of panicking).
    ///
    /// # Panics
    ///
    /// Panics if the two snapshots have different bucket bounds — they
    /// cannot be from the same histogram.
    pub fn since(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        assert_eq!(
            self.bounds, earlier.bounds,
            "snapshots of different histograms cannot be differenced"
        );
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            counts: self
                .counts
                .iter()
                .zip(&earlier.counts)
                .map(|(now, was)| now.saturating_sub(*was))
                .collect(),
            sum: (self.sum - earlier.sum).max(0.0),
            count: self.count.saturating_sub(earlier.count),
        }
    }
}

/// `count` exponentially spaced histogram bounds starting at `start`
/// (factor `factor` apart) — the usual shape for latency buckets.
///
/// # Panics
///
/// Panics unless `start > 0`, `factor > 1`, and `count >= 1`.
pub fn exponential_buckets(start: f64, factor: f64, count: usize) -> Vec<f64> {
    assert!(start > 0.0 && factor > 1.0 && count >= 1, "bad bucket spec");
    (0..count).map(|i| start * factor.powi(i as i32)).collect()
}

/// What kind of metric a registry entry is.
#[derive(Debug, Clone)]
pub enum MetricKind {
    /// Monotonic counter.
    Counter(Counter),
    /// Up/down gauge.
    Gauge(Gauge),
    /// Fixed-bucket histogram.
    Histogram(Histogram),
}

impl MetricKind {
    fn type_name(&self) -> &'static str {
        match self {
            MetricKind::Counter(_) => "counter",
            MetricKind::Gauge(_) => "gauge",
            MetricKind::Histogram(_) => "histogram",
        }
    }
}

#[derive(Debug)]
struct Entry {
    name: String,
    help: String,
    labels: Vec<(String, String)>,
    metric: MetricKind,
}

/// The metric registry: named families of counters, gauges, and
/// histograms, each family optionally split by labels.
///
/// Registration is **get-or-register**: asking for the same
/// `(name, labels)` twice returns a handle to the same cells, so an
/// instrumented subsystem and a dashboard (or test) can both "register"
/// the metric and observe one value. Asking for an existing
/// `(name, labels)` with a *different* metric kind panics — that is a
/// programming error, not a runtime condition.
#[derive(Debug, Default)]
pub struct TelemetryRegistry {
    entries: Mutex<Vec<Entry>>,
}

impl TelemetryRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get-or-register an unlabelled counter.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        self.counter_with(name, help, &[])
    }

    /// Get-or-register a labelled counter.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        match self.get_or_register(name, help, labels, || {
            MetricKind::Counter(Counter::default())
        }) {
            MetricKind::Counter(c) => c,
            other => panic!("{name} is registered as a {}", other.type_name()),
        }
    }

    /// Get-or-register an unlabelled gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        self.gauge_with(name, help, &[])
    }

    /// Get-or-register a labelled gauge.
    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.get_or_register(name, help, labels, || MetricKind::Gauge(Gauge::default())) {
            MetricKind::Gauge(g) => g,
            other => panic!("{name} is registered as a {}", other.type_name()),
        }
    }

    /// Get-or-register an unlabelled histogram with the given finite
    /// bucket bounds (strictly ascending; `+Inf` is implicit). On
    /// get-or-register hits the *existing* buckets win.
    pub fn histogram(&self, name: &str, help: &str, bounds: &[f64]) -> Histogram {
        self.histogram_with(name, help, bounds, &[])
    }

    /// Get-or-register a labelled histogram.
    pub fn histogram_with(
        &self,
        name: &str,
        help: &str,
        bounds: &[f64],
        labels: &[(&str, &str)],
    ) -> Histogram {
        match self.get_or_register(name, help, labels, || {
            MetricKind::Histogram(Histogram::new(bounds))
        }) {
            MetricKind::Histogram(h) => h,
            other => panic!("{name} is registered as a {}", other.type_name()),
        }
    }

    fn get_or_register(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        build: impl FnOnce() -> MetricKind,
    ) -> MetricKind {
        assert!(valid_metric_name(name), "invalid metric name {name:?}");
        assert!(
            labels.iter().all(|(k, _)| valid_label_name(k)),
            "invalid label name in {labels:?}"
        );
        let mut entries = self.entries.lock().expect("registry lock");
        if let Some(e) = entries
            .iter()
            .find(|e| e.name == name && label_eq(&e.labels, labels))
        {
            return e.metric.clone();
        }
        let metric = build();
        entries.push(Entry {
            name: name.to_string(),
            help: help.to_string(),
            labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            metric: metric.clone(),
        });
        metric
    }

    fn find(&self, name: &str, labels: &[(&str, &str)]) -> Option<MetricKind> {
        let entries = self.entries.lock().expect("registry lock");
        entries
            .iter()
            .find(|e| e.name == name && label_eq(&e.labels, labels))
            .map(|e| e.metric.clone())
    }

    /// Read-side lookup: the counter registered under `(name, labels)`,
    /// or `None` — unlike [`counter_with`](Self::counter_with) this never
    /// creates a series, so samplers (a governor reading pressure, a
    /// dashboard) can probe for families that may not exist without
    /// polluting the registry.
    pub fn find_counter(&self, name: &str, labels: &[(&str, &str)]) -> Option<Counter> {
        match self.find(name, labels) {
            Some(MetricKind::Counter(c)) => Some(c),
            _ => None,
        }
    }

    /// Read-side lookup of a gauge; `None` if absent or a different kind.
    pub fn find_gauge(&self, name: &str, labels: &[(&str, &str)]) -> Option<Gauge> {
        match self.find(name, labels) {
            Some(MetricKind::Gauge(g)) => Some(g),
            _ => None,
        }
    }

    /// Read-side lookup of a histogram; `None` if absent or a different
    /// kind.
    pub fn find_histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<Histogram> {
        match self.find(name, labels) {
            Some(MetricKind::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    /// Every series of a scalar family (counters and gauges), as
    /// `(labels, current value)` in registration order. Histogram series
    /// are skipped — read those via [`find_histogram`](Self::find_histogram)
    /// and [`Histogram::snapshot`]. The family-wide view a pressure
    /// sampler folds (e.g. max queue depth across `replica="<i>"` series).
    pub fn family_values(&self, name: &str) -> Vec<(Vec<(String, String)>, f64)> {
        let entries = self.entries.lock().expect("registry lock");
        entries
            .iter()
            .filter(|e| e.name == name)
            .filter_map(|e| match &e.metric {
                MetricKind::Counter(c) => Some((e.labels.clone(), c.value())),
                MetricKind::Gauge(g) => Some((e.labels.clone(), g.value())),
                MetricKind::Histogram(_) => None,
            })
            .collect()
    }

    /// Every registered family name, in registration order, deduplicated.
    pub fn metric_names(&self) -> Vec<String> {
        let entries = self.entries.lock().expect("registry lock");
        let mut names: Vec<String> = Vec::new();
        for e in entries.iter() {
            if names.last() != Some(&e.name) && !names.contains(&e.name) {
                names.push(e.name.clone());
            }
        }
        names
    }

    /// Renders every metric in the Prometheus text exposition format
    /// (`# HELP` / `# TYPE` once per family, histograms as cumulative
    /// `_bucket{le=...}` series plus `_sum` and `_count`).
    pub fn render_prometheus(&self) -> String {
        let entries = self.entries.lock().expect("registry lock");
        let mut out = String::new();
        let mut rendered: Vec<&str> = Vec::new();
        for e in entries.iter() {
            if rendered.contains(&e.name.as_str()) {
                continue;
            }
            rendered.push(&e.name);
            let _ = writeln!(out, "# HELP {} {}", e.name, escape_help(&e.help));
            let _ = writeln!(out, "# TYPE {} {}", e.name, e.metric.type_name());
            for member in entries.iter().filter(|m| m.name == e.name) {
                render_entry(&mut out, member);
            }
        }
        out
    }
}

fn render_entry(out: &mut String, e: &Entry) {
    match &e.metric {
        MetricKind::Counter(c) => {
            let _ = writeln!(
                out,
                "{}{} {}",
                e.name,
                label_set(&e.labels, None),
                c.value()
            );
        }
        MetricKind::Gauge(g) => {
            let _ = writeln!(
                out,
                "{}{} {}",
                e.name,
                label_set(&e.labels, None),
                g.value()
            );
        }
        MetricKind::Histogram(h) => {
            let counts = h.bucket_counts();
            let mut cumulative = 0u64;
            for (i, c) in counts.iter().enumerate() {
                cumulative += c;
                let le = match h.inner.bounds.get(i) {
                    Some(b) => b.to_string(),
                    None => "+Inf".to_string(),
                };
                let _ = writeln!(
                    out,
                    "{}_bucket{} {}",
                    e.name,
                    label_set(&e.labels, Some(&le)),
                    cumulative
                );
            }
            let _ = writeln!(
                out,
                "{}_sum{} {}",
                e.name,
                label_set(&e.labels, None),
                h.sum()
            );
            let _ = writeln!(
                out,
                "{}_count{} {}",
                e.name,
                label_set(&e.labels, None),
                h.count()
            );
        }
    }
}

fn label_set(labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut s = String::from("{");
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "{k}=\"{}\"", escape_label(v));
    }
    if let Some(le) = le {
        if !labels.is_empty() {
            s.push(',');
        }
        let _ = write!(s, "le=\"{le}\"");
    }
    s.push('}');
    s
}

fn label_eq(a: &[(String, String)], b: &[(&str, &str)]) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b)
            .all(|((ak, av), (bk, bv))| ak == bk && av == bv)
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn escape_help(v: &str) -> String {
    v.replace('\\', "\\\\").replace('\n', "\\n")
}

fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    matches!(chars.next(), Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_name(name: &str) -> bool {
    let mut chars = name.chars();
    matches!(chars.next(), Some(c) if c.is_ascii_alphabetic() || c == '_')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_monotonic_and_shared_across_clones() {
        let r = TelemetryRegistry::new();
        let a = r.counter("reqs_total", "requests");
        let b = a.clone();
        a.inc();
        b.add(2.0);
        assert_eq!(a.value(), 3.0);
        assert_eq!(r.counter("reqs_total", "requests").value(), 3.0);
    }

    #[test]
    fn counter_addition_matches_sequential_f64_sums_bitwise() {
        // The bit-exact-ledger contract: single-threaded CAS adds round
        // exactly like a += chain.
        let c = Counter::default();
        let samples = [0.1, 0.7, 1e-9, 123.456, 0.3333333];
        let mut reference = 0.0f64;
        for s in samples {
            c.add(s);
            reference += s;
        }
        assert_eq!(c.value().to_bits(), reference.to_bits());
    }

    #[test]
    fn gauges_move_both_ways() {
        let r = TelemetryRegistry::new();
        let g = r.gauge("queue_depth", "queue depth");
        g.set(5.0);
        g.add(-2.0);
        assert_eq!(g.value(), 3.0);
    }

    #[test]
    fn labelled_families_are_distinct_series() {
        let r = TelemetryRegistry::new();
        let read = r.counter_with("energy_pj_total", "energy", &[("channel", "read")]);
        let write = r.counter_with("energy_pj_total", "energy", &[("channel", "write")]);
        read.add(1.5);
        write.add(2.5);
        let text = r.render_prometheus();
        assert!(text.contains("energy_pj_total{channel=\"read\"} 1.5"));
        assert!(text.contains("energy_pj_total{channel=\"write\"} 2.5"));
        assert_eq!(text.matches("# TYPE energy_pj_total").count(), 1);
    }

    #[test]
    fn histogram_buckets_are_cumulative_in_the_exposition() {
        let r = TelemetryRegistry::new();
        let h = r.histogram("lat_seconds", "latency", &[0.001, 0.01, 0.1]);
        for v in [0.0005, 0.005, 0.005, 0.05, 5.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert!((h.sum() - 5.0605).abs() < 1e-12);
        assert!((h.mean() - 1.0121).abs() < 1e-12);
        let text = r.render_prometheus();
        assert!(text.contains("lat_seconds_bucket{le=\"0.001\"} 1"));
        assert!(text.contains("lat_seconds_bucket{le=\"0.01\"} 3"));
        assert!(text.contains("lat_seconds_bucket{le=\"0.1\"} 4"));
        assert!(text.contains("lat_seconds_bucket{le=\"+Inf\"} 5"));
        assert!(text.contains("lat_seconds_count 5"));
    }

    #[test]
    fn histogram_quantile_reports_bucket_bounds() {
        let h = Histogram::new(&[1.0, 2.0, 4.0]);
        assert_eq!(h.quantile(0.5), 0.0, "empty histogram");
        for v in [0.5, 0.5, 1.5, 3.0] {
            h.observe(v);
        }
        assert_eq!(h.quantile(0.5), 1.0);
        assert_eq!(h.quantile(0.99), 4.0);
        h.observe(100.0); // past the last finite bound
        assert_eq!(h.quantile(1.0), 4.0);
    }

    #[test]
    fn exponential_buckets_grow_by_the_factor() {
        assert_eq!(exponential_buckets(0.5, 2.0, 3), vec![0.5, 1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "registered as a counter")]
    fn kind_conflicts_panic() {
        let r = TelemetryRegistry::new();
        r.counter("x_total", "x");
        r.gauge("x_total", "x");
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn invalid_names_are_rejected() {
        TelemetryRegistry::new().counter("bad name", "x");
    }

    #[test]
    fn metric_names_lists_each_family_once() {
        let r = TelemetryRegistry::new();
        r.counter_with("a_total", "a", &[("k", "1")]);
        r.counter_with("a_total", "a", &[("k", "2")]);
        r.gauge("b", "b");
        assert_eq!(
            r.metric_names(),
            vec!["a_total".to_string(), "b".to_string()]
        );
    }

    #[test]
    fn find_is_read_only_and_kind_checked() {
        let r = TelemetryRegistry::new();
        assert!(r.find_counter("absent_total", &[]).is_none());
        assert!(
            r.metric_names().is_empty(),
            "a failed lookup must not register the family"
        );
        let c = r.counter_with("reqs_total", "reqs", &[("tenant", "lo")]);
        c.add(3.0);
        let found = r
            .find_counter("reqs_total", &[("tenant", "lo")])
            .expect("registered series");
        assert_eq!(found.value(), 3.0);
        assert!(r.find_counter("reqs_total", &[("tenant", "hi")]).is_none());
        // Kind mismatches answer None instead of panicking (lookups are
        // probes, not registrations).
        assert!(r.find_gauge("reqs_total", &[("tenant", "lo")]).is_none());
        assert!(r
            .find_histogram("reqs_total", &[("tenant", "lo")])
            .is_none());
    }

    #[test]
    fn family_values_folds_all_scalar_series() {
        let r = TelemetryRegistry::new();
        r.gauge_with("depth", "d", &[("replica", "0")]).set(2.0);
        r.gauge_with("depth", "d", &[("replica", "1")]).set(7.0);
        r.histogram("depth_hist", "h", &[1.0]); // different family, skipped
        let values = r.family_values("depth");
        assert_eq!(values.len(), 2);
        assert_eq!(values[0].0, vec![("replica".into(), "0".into())]);
        let max = values.iter().map(|(_, v)| *v).fold(f64::MIN, f64::max);
        assert_eq!(max, 7.0);
        assert!(r.family_values("absent").is_empty());
    }

    #[test]
    fn histogram_snapshots_difference_into_windows() {
        let h = Histogram::new(&[1.0, 2.0, 4.0]);
        for v in [0.5, 1.5, 3.0] {
            h.observe(v);
        }
        let earlier = h.snapshot();
        assert_eq!(earlier.count(), 3);
        assert_eq!(earlier.quantile(0.5), 2.0);
        for v in [3.5, 3.5, 3.5, 100.0] {
            h.observe(v);
        }
        let later = h.snapshot();
        let window = later.since(&earlier);
        // Only the four new samples: p50 sits in the (2, 4] bucket and the
        // overflow sample reports the last finite bound, like the live
        // histogram's quantile.
        assert_eq!(window.count(), 4);
        assert_eq!(window.quantile(0.5), 4.0);
        assert_eq!(window.quantile(1.0), 4.0);
        assert!((window.sum() - 110.5).abs() < 1e-9);
        assert!((window.mean() - 27.625).abs() < 1e-9);
        // An empty window answers zeros.
        let empty = later.since(&later);
        assert_eq!(empty.count(), 0);
        assert_eq!(empty.quantile(0.99), 0.0);
        assert_eq!(empty.mean(), 0.0);
    }

    #[test]
    #[should_panic(expected = "different histograms")]
    fn mismatched_snapshots_refuse_to_difference() {
        let a = Histogram::new(&[1.0]).snapshot();
        let b = Histogram::new(&[2.0]).snapshot();
        let _ = a.since(&b);
    }

    #[test]
    fn help_and_label_values_are_escaped() {
        let r = TelemetryRegistry::new();
        r.counter_with("esc_total", "line\nbreak", &[("path", "a\"b\\c")]);
        let text = r.render_prometheus();
        assert!(text.contains("# HELP esc_total line\\nbreak"));
        assert!(text.contains("path=\"a\\\"b\\\\c\""));
    }
}
