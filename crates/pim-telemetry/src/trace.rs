//! Span/event tracing into a bounded ring buffer, dumped as JSONL.
//!
//! The tracer is for *attribution* — which stage a request spent its time
//! in — where the metrics registry is for *aggregation*. Every record is
//! timestamped against the tracer's creation instant, so a dump is a
//! self-consistent timeline even though the host has no global clock the
//! simulator shares.

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One recorded span (or instant event, when `dur_ns` is 0).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Start offset from tracer creation, nanoseconds.
    pub ts_ns: u64,
    /// Span duration in nanoseconds (0 for instant events).
    pub dur_ns: u64,
    /// Span name, dotted by convention (`serve.compute`).
    pub name: String,
    /// Free-form key/value attributes.
    pub attrs: Vec<(String, String)>,
}

struct Ring {
    buf: VecDeque<TraceEvent>,
    capacity: usize,
}

/// A span/event recorder over a bounded ring buffer: when the buffer is
/// full the **oldest** events are evicted (and counted in
/// [`dropped`](Tracer::dropped)), so the most recent window is always
/// retained and recording cost is bounded.
#[derive(Debug)]
pub struct Tracer {
    epoch: Instant,
    ring: Mutex<Ring>,
    dropped: AtomicU64,
}

impl std::fmt::Debug for Ring {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ring")
            .field("len", &self.buf.len())
            .field("capacity", &self.capacity)
            .finish()
    }
}

impl Tracer {
    /// A tracer retaining at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            epoch: Instant::now(),
            ring: Mutex::new(Ring {
                buf: VecDeque::with_capacity(capacity.clamp(1, 1 << 20)),
                capacity: capacity.max(1),
            }),
            dropped: AtomicU64::new(0),
        }
    }

    /// Nanoseconds since the tracer was created (the `ts_ns` clock).
    pub fn elapsed_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Starts a span clocked from now; finish it (or drop it) to record.
    pub fn span(&self, name: &str) -> ActiveSpan<'_> {
        ActiveSpan {
            tracer: self,
            name: name.to_string(),
            started: Instant::now(),
            attrs: Vec::new(),
            recorded: false,
        }
    }

    /// Records an instant event.
    pub fn event(&self, name: &str, attrs: &[(&str, String)]) {
        self.record(TraceEvent {
            ts_ns: self.elapsed_ns(),
            dur_ns: 0,
            name: name.to_string(),
            attrs: attrs
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        });
    }

    /// Records a span that ends now and lasted `dur` — for callers that
    /// timed the work themselves (e.g. a queue wait carried on a request).
    pub fn record_span_ending_now(&self, name: &str, dur: Duration, attrs: &[(&str, String)]) {
        let dur_ns = dur.as_nanos() as u64;
        self.record(TraceEvent {
            ts_ns: self.elapsed_ns().saturating_sub(dur_ns),
            dur_ns,
            name: name.to_string(),
            attrs: attrs
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        });
    }

    /// Pushes a fully formed event into the ring.
    pub fn record(&self, event: TraceEvent) {
        let mut ring = self.ring.lock().expect("trace ring lock");
        if ring.buf.len() == ring.capacity {
            ring.buf.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.buf.push_back(event);
    }

    /// A copy of the retained events, oldest first.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        self.ring
            .lock()
            .expect("trace ring lock")
            .buf
            .iter()
            .cloned()
            .collect()
    }

    /// Removes and returns the retained events, oldest first.
    pub fn drain(&self) -> Vec<TraceEvent> {
        self.ring
            .lock()
            .expect("trace ring lock")
            .buf
            .drain(..)
            .collect()
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Retained event count.
    pub fn len(&self) -> usize {
        self.ring.lock().expect("trace ring lock").buf.len()
    }

    /// Whether nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// An in-flight span; records itself on [`finish`](ActiveSpan::finish)
/// or, if forgotten, on drop.
#[derive(Debug)]
pub struct ActiveSpan<'a> {
    tracer: &'a Tracer,
    name: String,
    started: Instant,
    attrs: Vec<(String, String)>,
    recorded: bool,
}

impl ActiveSpan<'_> {
    /// Attaches an attribute.
    pub fn attr(&mut self, key: &str, value: impl std::fmt::Display) {
        self.attrs.push((key.to_string(), value.to_string()));
    }

    /// Ends the span and records it.
    pub fn finish(mut self) {
        self.record_now();
    }

    fn record_now(&mut self) {
        if self.recorded {
            return;
        }
        self.recorded = true;
        let dur = self.started.elapsed();
        self.tracer.record_span_ending_now(
            &self.name,
            dur,
            &self
                .attrs
                .iter()
                .map(|(k, v)| (k.as_str(), v.clone()))
                .collect::<Vec<_>>(),
        );
    }
}

impl Drop for ActiveSpan<'_> {
    fn drop(&mut self) {
        self.record_now();
    }
}

/// A point-in-time copy of a tracer's ring, renderable as JSONL (one
/// JSON object per line: `ts_ns`, `dur_ns`, `name`, `attrs`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceDump {
    events: Vec<TraceEvent>,
    dropped: u64,
}

impl TraceDump {
    /// Snapshots `tracer` without draining it.
    pub fn from_tracer(tracer: &Tracer) -> Self {
        Self {
            events: tracer.snapshot(),
            dropped: tracer.dropped(),
        }
    }

    /// Wraps an explicit event list.
    pub fn from_events(events: Vec<TraceEvent>) -> Self {
        Self { events, dropped: 0 }
    }

    /// The captured events, oldest first.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Events the tracer had evicted before this snapshot.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Captured event count.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the dump holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Renders the dump as JSONL.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            let _ = write!(
                out,
                "{{\"ts_ns\":{},\"dur_ns\":{},\"name\":\"{}\",\"attrs\":{{",
                e.ts_ns,
                e.dur_ns,
                escape_json(&e.name)
            );
            for (i, (k, v)) in e.attrs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{}\":\"{}\"", escape_json(k), escape_json(v));
            }
            out.push_str("}}\n");
        }
        out
    }

    /// Writes the JSONL rendering to `path`.
    pub fn save(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_jsonl())
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_record_on_finish_with_attrs() {
        let t = Tracer::new(8);
        let mut span = t.span("serve.compute");
        span.attr("batch", 4);
        span.finish();
        let events = t.snapshot();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].name, "serve.compute");
        assert_eq!(
            events[0].attrs,
            vec![("batch".to_string(), "4".to_string())]
        );
    }

    #[test]
    fn forgotten_spans_record_on_drop() {
        let t = Tracer::new(8);
        {
            let _span = t.span("implicit");
        }
        assert_eq!(t.snapshot()[0].name, "implicit");
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let t = Tracer::new(2);
        t.event("a", &[]);
        t.event("b", &[]);
        t.event("c", &[]);
        let names: Vec<String> = t.snapshot().into_iter().map(|e| e.name).collect();
        assert_eq!(names, vec!["b", "c"]);
        assert_eq!(t.dropped(), 1);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn drain_empties_the_ring() {
        let t = Tracer::new(4);
        t.event("x", &[]);
        assert_eq!(t.drain().len(), 1);
        assert!(t.is_empty());
    }

    #[test]
    fn timestamps_are_monotonic_against_the_epoch() {
        let t = Tracer::new(4);
        t.event("first", &[]);
        t.record_span_ending_now("second", Duration::from_nanos(10), &[]);
        let events = t.snapshot();
        assert!(events[1].ts_ns + events[1].dur_ns >= events[0].ts_ns);
        assert_eq!(events[1].dur_ns, 10);
    }

    #[test]
    fn jsonl_dump_escapes_and_terminates_lines() {
        let dump = TraceDump::from_events(vec![TraceEvent {
            ts_ns: 1,
            dur_ns: 2,
            name: "weird\"name".to_string(),
            attrs: vec![("k".to_string(), "line\nbreak".to_string())],
        }]);
        let jsonl = dump.to_jsonl();
        assert_eq!(jsonl.lines().count(), 1);
        assert_eq!(
            jsonl.trim_end(),
            "{\"ts_ns\":1,\"dur_ns\":2,\"name\":\"weird\\\"name\",\"attrs\":{\"k\":\"line\\nbreak\"}}"
        );
        assert_eq!(dump.len(), 1);
        assert!(!dump.is_empty());
        assert_eq!(dump.dropped(), 0);
    }

    #[test]
    fn dump_snapshots_without_draining() {
        let t = Tracer::new(4);
        t.event("keep", &[]);
        let dump = TraceDump::from_tracer(&t);
        assert_eq!(dump.len(), 1);
        assert_eq!(t.len(), 1, "snapshot must not drain");
    }
}
