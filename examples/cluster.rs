//! Sharded, replicated cluster serving under an open-loop bursty load.
//!
//! Starts a 3-replica fleet (each replica sharded across 2 simulated
//! macro groups), then drives it with an **open-loop** arrival process:
//! requests fire on a precomputed exponential-inter-arrival schedule that
//! alternates calm and burst phases, regardless of how fast the fleet
//! answers — exactly the regime where bounded-queue admission control
//! and queue-depth-aware routing earn their keep. Mid-run, a canary
//! rollout swaps the model fleet-wide under live traffic.
//!
//! The run's wall-clock p99 serving latency and cluster rejection
//! fraction are merged into `BENCH_kernels.json` as the derived
//! `cluster_p99_ms` / `cluster_rejection_frac` keys, where `bench-gate`
//! enforces their SLO ceilings in CI.
//!
//! Run with: `cargo run --release --example cluster`

use pim_bench::merge_bench_json;
use pim_cluster::{ClusterBuilder, ClusterError};
use pim_data::SyntheticSpec;
use pim_nn::models::{Backbone, BackboneConfig, RepNet, RepNetConfig};
use pim_nn::tensor::Tensor;
use pim_runtime::{CompiledModel, Telemetry};
use std::path::Path;
use std::sync::Mutex;
use std::time::{Duration, Instant};

const REPLICAS: usize = 3;
const MACRO_GROUPS: usize = 2;
const NUM_CLASSES: usize = 10;
/// Requests per phase; phases alternate calm and burst.
const PHASE_LEN: usize = 60;
const PHASES: usize = 6;
/// Mean inter-arrival gap per phase kind.
const CALM_GAP_US: f64 = 900.0;
const BURST_GAP_US: f64 = 120.0;

/// SLO ceilings (mirrored by `bench-gate`): the open-loop run must hold
/// p99 wall latency and the rejection fraction under these.
const SLO_P99_MS: f64 = 250.0;
const SLO_REJECTION_FRAC: f64 = 0.10;

fn tiny_model(seed: u64) -> RepNet {
    RepNet::new(
        Backbone::new(BackboneConfig::tiny()),
        RepNetConfig {
            rep_channels: 4,
            num_classes: NUM_CLASSES,
            seed,
        },
    )
}

/// xorshift64 → uniform in (0, 1].
fn uniform(state: &mut u64) -> f64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    ((*state >> 11) as f64 + 1.0) / (1u64 << 53) as f64
}

/// Exponential inter-arrival gaps: the open-loop Poisson schedule.
fn exp_gap_us(state: &mut u64, mean_us: f64) -> f64 {
    -mean_us * uniform(state).ln()
}

fn main() {
    let total_requests = PHASE_LEN * PHASES;
    println!("=== pim-cluster: sharded, replicated serving under open-loop load ===\n");

    // -- Fleet ------------------------------------------------------------
    let telemetry = Telemetry::new();
    let compiled =
        CompiledModel::compile("repnet-v1", &tiny_model(42)).expect("model fits the PEs");
    println!("compiled {compiled}");
    let mut builder = ClusterBuilder::new()
        .replicas(REPLICAS)
        .macro_groups(MACRO_GROUPS)
        .workers(1)
        .queue_capacity(32)
        .max_batch(8)
        .max_wait(Duration::from_micros(500))
        .telemetry(telemetry.clone());
    let id = builder.register(compiled);
    let cluster = builder.start();
    println!(
        "fleet: {} replicas x {} macro groups, {} healthy\n",
        cluster.replica_count(),
        cluster.macro_groups(),
        cluster.healthy_replicas()
    );

    // -- Open-loop schedule ----------------------------------------------
    // Precomputed arrival offsets: requests fire at their scheduled time
    // whether or not earlier ones have completed (no closed-loop
    // self-throttling), alternating calm and burst phases.
    let mut rng = 0x0b5e_55ed_10adu64;
    let mut arrivals_us = Vec::with_capacity(total_requests);
    let mut clock_us = 0.0;
    for phase in 0..PHASES {
        let mean = if phase % 2 == 0 {
            CALM_GAP_US
        } else {
            BURST_GAP_US
        };
        for _ in 0..PHASE_LEN {
            clock_us += exp_gap_us(&mut rng, mean);
            arrivals_us.push(clock_us);
        }
    }

    let task = SyntheticSpec::cifar10_like()
        .with_geometry(8, 1)
        .with_samples(1, total_requests.div_ceil(NUM_CLASSES))
        .generate()
        .expect("synthetic task");
    let inputs: Vec<Tensor> = (0..total_requests)
        .map(|i| task.test.inputs().batch_item(i))
        .collect();

    // -- Drive ------------------------------------------------------------
    // The dispatcher fires submissions on schedule; waiter threads absorb
    // the tickets so a slow response never delays the next arrival.
    let wall_latencies_ns: Mutex<Vec<f64>> = Mutex::new(Vec::with_capacity(total_requests));
    let mut dropped = 0u64;
    let mut routed_per_replica = vec![0u64; REPLICAS];
    let start = Instant::now();
    std::thread::scope(|scope| {
        for (i, (input, due_us)) in inputs.iter().zip(&arrivals_us).enumerate() {
            // Open loop: sleep until this request's scheduled arrival.
            let due = Duration::from_nanos((due_us * 1e3) as u64);
            if let Some(wait) = due.checked_sub(start.elapsed()) {
                std::thread::sleep(wait);
            }
            // Canary rollout mid-run, under live traffic.
            if i == total_requests / 2 {
                let v2 = CompiledModel::compile("repnet-v2", &tiny_model(43)).expect("v2 compiles");
                let report = cluster.swap_model(id, v2).expect("rollout");
                println!(
                    "mid-run rollout: canary on replica {}, fleet now at versions {:?}",
                    report.canary_replica, report.versions
                );
            }
            match cluster.submit(id, input) {
                Ok(ticket) => {
                    routed_per_replica[ticket.replica()] += 1;
                    let latencies = &wall_latencies_ns;
                    scope.spawn(move || {
                        let response = ticket.wait().expect("accepted ticket answered");
                        latencies
                            .lock()
                            .expect("latency lock")
                            .push(response.queue_wait.as_nanos() as f64);
                    });
                }
                // Open loop drops rejected arrivals — no retry.
                Err(ClusterError::Saturated { .. }) => dropped += 1,
                Err(e) => panic!("submit failed: {e}"),
            }
        }
    });
    let stats = cluster.shutdown();

    // -- SLO check --------------------------------------------------------
    let mut wall_ns = wall_latencies_ns.into_inner().expect("latency lock");
    wall_ns.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let nearest_rank = |p: f64| -> f64 {
        let rank = ((p * wall_ns.len() as f64).ceil() as usize).clamp(1, wall_ns.len());
        wall_ns[rank - 1]
    };
    let p50_ms = nearest_rank(0.50) / 1e6;
    let p99_ms = nearest_rank(0.99) / 1e6;
    let rejection_frac = stats.rejection_fraction();

    assert_eq!(stats.submitted, total_requests as u64);
    assert_eq!(stats.accepted + stats.rejected, stats.submitted);
    assert_eq!(stats.rejected, dropped);
    // +1: the rollout's canary verification probe is served by replica 0
    // directly, outside the cluster's admission ledger.
    assert_eq!(stats.total.requests_completed, stats.accepted + 1);
    assert_eq!(stats.total.model_swaps as usize, REPLICAS);

    println!("\n{stats}");
    println!("\nopen-loop workload ({PHASES} phases x {PHASE_LEN} requests):");
    println!("  wall time            : {:?}", start.elapsed());
    println!("  routed per replica   : {routed_per_replica:?}");
    println!("  wall latency p50     : {p50_ms:.3} ms");
    println!("  wall latency p99     : {p99_ms:.3} ms  (SLO {SLO_P99_MS} ms)");
    println!("  rejection fraction   : {rejection_frac:.4}  (SLO {SLO_REJECTION_FRAC})");
    assert!(
        p99_ms <= SLO_P99_MS,
        "p99 wall latency {p99_ms:.3} ms exceeds the {SLO_P99_MS} ms SLO"
    );
    assert!(
        rejection_frac <= SLO_REJECTION_FRAC,
        "rejection fraction {rejection_frac:.4} exceeds the {SLO_REJECTION_FRAC} SLO"
    );
    println!("  SLOs                 : PASS");

    // -- Publish for bench-gate -------------------------------------------
    let out = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_kernels.json");
    merge_bench_json::<&str>(
        &out,
        "kernels",
        &[],
        &[
            ("cluster_p99_ms", p99_ms),
            ("cluster_rejection_frac", rejection_frac),
        ],
    )
    .expect("writable workspace root");
}
