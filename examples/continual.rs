//! Online continual learning with live publication into the serving
//! runtime — the paper's deployment story, end to end.
//!
//! A `LearnEngine` streams labelled samples into a replay buffer and takes
//! incremental SGD steps on the Rep-Net adaptor (backbone frozen in
//! write-protected MRAM). Every few steps it **differentially writes the
//! updated adaptor weights back** into its resident SRAM PE tiles —
//! toggling only the changed bit-cells, metered against the endurance
//! budget — and hot-swaps the new model version into a running
//! `pim-runtime` serving pool while clients keep querying it.
//!
//! The run closes with the hybrid contract ledger (MRAM writes must be
//! zero), a differential-vs-full write comparison, a live
//! Figure-8-style EDP bar chart against a modelled finetune-all-in-NVM
//! deployment, and a compact Table-1 scenario: the same frozen backbone
//! re-adapted to a sequence of downstream tasks through `HybridSystem`.
//!
//! Run with: `cargo run --release --example continual`

use pim_core::pe_inference::PeRepNet;
use pim_core::{HybridSystem, NmPattern, SystemConfig};
use pim_data::{downstream_suite, SyntheticSpec};
use pim_learn::{LearnEngine, OnlineLearnerConfig, WritePolicy};
use pim_nn::models::{Backbone, BackboneConfig, RepNet, RepNetConfig};
use pim_nn::train::FitConfig;
use pim_runtime::Runtime;
use std::time::Duration;

const NUM_CLASSES: usize = 10;
const ROUNDS: usize = 4;
const STEPS_PER_ROUND: usize = 5;
const QUERIES_PER_ROUND: usize = 12;

fn main() {
    println!("=== pim-learn: continual learning with hot model swap ===\n");

    // -- The deployment: frozen backbone + learnable adaptor --------------
    let model = RepNet::new(
        Backbone::new(BackboneConfig::tiny()),
        RepNetConfig {
            rep_channels: 4,
            num_classes: NUM_CLASSES,
            seed: 42,
        },
    );
    let policy = WritePolicy::hybrid_dac24(1 << 22);
    println!("write policy : {policy}");
    let mut engine = LearnEngine::new(
        "repnet",
        model,
        OnlineLearnerConfig {
            replay_capacity: 128,
            batch_size: 8,
            lr: 0.01,
            seed: 7,
            ..OnlineLearnerConfig::default()
        },
        policy,
    )
    .expect("model fits the PEs");
    println!(
        "resident     : {} SRAM PE tiles, full reload = {} bit-writes\n",
        engine.tile_count(),
        engine.full_load_bits()
    );

    // -- Serving pool over the same model ---------------------------------
    let mut builder = Runtime::builder()
        .workers(2)
        .max_batch(8)
        .max_wait(Duration::from_micros(200));
    let id = builder.register(engine.compiled());
    let runtime = builder.start();

    // -- The labelled stream ----------------------------------------------
    let task = SyntheticSpec::cifar10_like()
        .with_geometry(8, 1)
        .with_samples(8, 4)
        .generate()
        .expect("synthetic task");

    // -- Learn, publish, serve — interleaved ------------------------------
    let mut sample = 0;
    for round in 0..ROUNDS {
        // New labelled samples arrive on-device.
        for _ in 0..8 {
            let (x, labels) = task.train.batch(&[sample % task.train.len()]);
            engine.observe(&x, labels[0]);
            sample += 1;
        }
        // A few incremental training steps over the replay buffer.
        let mut last_loss = 0.0;
        for _ in 0..STEPS_PER_ROUND {
            last_loss = engine.step().expect("online step").loss;
        }
        // Differential write-back + atomic hot swap into serving.
        let version = engine.publish(&runtime, id).expect("publish");
        // Clients keep querying across the swap.
        let mut correct = 0;
        for q in 0..QUERIES_PER_ROUND {
            let (x, labels) = task.test.batch(&[q % task.test.len()]);
            let response = runtime.infer(id, &x).expect("serve");
            if response.prediction == labels[0] {
                correct += 1;
            }
        }
        println!(
            "round {round}: loss {last_loss:.4} -> published v{version} \
             ({} bit-writes so far), serving {correct}/{QUERIES_PER_ROUND} test hits",
            engine.report().sram_write_bits
        );
    }
    println!();

    // -- Bit-exactness: serving matches a cold recompile -------------------
    let mut cold_model = engine.learner().model().clone();
    let mut cold_branch = PeRepNet::compile(&mut cold_model).expect("cold recompile");
    let (x, _) = task.test.batch(&[0]);
    let served = runtime.infer(id, &x).expect("serve");
    let (cold_logits, _) = cold_branch.predict(&mut cold_model, &x);
    assert_eq!(
        served.logits,
        cold_logits.as_slice(),
        "served logits must match a cold compile of the current weights"
    );
    println!("spot-check   : served logits bit-exact with cold recompile");

    // -- The hybrid contract ledger ----------------------------------------
    let report = engine.report();
    assert_eq!(report.mram_write_bits, 0, "backbone must stay untouched");
    assert!(report.within_budget());
    println!("learn ledger : {report}");
    println!(
        "differential : {} bit-writes across {} publishes vs {} for full reloads ({:.1}% saved)",
        report.sram_write_bits,
        report.publishes,
        engine.full_load_bits() * report.publishes,
        100.0
            * (1.0
                - report.sram_write_bits as f64
                    / (engine.full_load_bits() * report.publishes) as f64)
    );

    let serving = runtime.shutdown();
    println!("serve ledger : {serving}");
    assert_eq!(serving.model_swaps, ROUNDS as u64);

    // -- Live Figure 8 ------------------------------------------------------
    println!();
    let fig = engine
        .fig8("1:4")
        .expect("publishes happened, EDP is measured");
    print!("{fig}");

    // -- Table-1 scenario: one backbone, a sequence of tasks ---------------
    // The same property at system scope: pretrain a backbone once, then
    // re-adapt only the tiny 1:4-sparse Rep-Net path to each downstream
    // task. The backbone never takes a write, so every task switch is an
    // SRAM-only rewrite.
    println!("\n=== Table-1 scenario: frozen backbone, per-task adaptors ===\n");
    let backbone = BackboneConfig {
        in_channels: 3,
        image_size: 8,
        stage_widths: vec![16, 32],
        blocks_per_stage: 1,
        seed: 1,
    };
    let fit = FitConfig {
        epochs: 8,
        batch_size: 32,
        lr: 0.05,
        momentum: 0.9,
        weight_decay: 1e-4,
        seed: 3,
    };
    let upstream = SyntheticSpec::upstream_pretraining()
        .with_geometry(8, 3)
        .generate()
        .expect("upstream spec");
    let mut system = HybridSystem::pretrain(
        SystemConfig {
            backbone,
            rep_channels: 8,
            pattern: Some(NmPattern::new(1, 4).expect("valid pattern")),
            seed: 7,
        },
        &upstream,
        &fit,
    );
    for spec in downstream_suite().into_iter().take(2) {
        let task = spec
            .with_geometry(8, 3)
            .with_samples(6, 3)
            .generate()
            .expect("task spec");
        let report = system.learn_task(&task, &fit);
        assert!(
            report.accuracy_fp32 > 0.2,
            "adaptor failed to learn the task: {report}"
        );
        assert!(
            report.accuracy_int8 > report.accuracy_fp32 - 0.25,
            "PTQ collapsed: {report}"
        );
        println!("  {report}");
    }
    let dep = system.deployment().expect("maps onto the PEs");
    assert!(dep.total_area().as_mm2() > 0.0);
    println!(
        "  deployment: {:.2} mm² total, write energy/step limited to the SRAM branch",
        dep.total_area().as_mm2()
    );
}
