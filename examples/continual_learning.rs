//! Continual learning over the paper's five downstream tasks.
//!
//! Mirrors the Table 1 scenario: one frozen, pretrained backbone (the
//! MRAM-resident branch), with the Rep-Net path re-adapted to each task in
//! sequence. The backbone never changes — new tasks only rewrite the tiny
//! SRAM-resident path — which is exactly the property the hybrid memory
//! design monetizes.
//!
//! Run with: `cargo run --release --example continual_learning`

use pim_core::{HybridSystem, SystemConfig};
use pim_data::{downstream_suite, SyntheticSpec};
use pim_nn::models::BackboneConfig;
use pim_nn::train::FitConfig;
use pim_sparse::NmPattern;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    // Wide enough that N:M pruning of the frozen branch retains usable
    // features (see EXPERIMENTS.md on backbone-width sensitivity).
    let backbone = BackboneConfig {
        in_channels: 3,
        image_size: 8,
        stage_widths: vec![16, 32],
        blocks_per_stage: 1,
        seed: 1,
    };
    let fit = FitConfig {
        epochs: 8,
        batch_size: 32,
        lr: 0.05,
        momentum: 0.9,
        weight_decay: 1e-4,
        seed: 3,
    };

    let upstream = SyntheticSpec::upstream_pretraining()
        .with_geometry(8, 3)
        .generate()?;

    for pattern in [
        None,
        Some(NmPattern::new(1, 4)?),
        Some(NmPattern::new(1, 8)?),
    ] {
        let label = pattern.map_or("dense".to_owned(), |p| p.to_string());
        println!("== Rep-Net configuration: {label} ==");
        let mut system = HybridSystem::pretrain(
            SystemConfig {
                backbone: backbone.clone(),
                rep_channels: 8,
                pattern,
                seed: 7,
            },
            &upstream,
            &fit,
        );
        for spec in downstream_suite() {
            let task = spec.with_geometry(8, 3).with_samples(6, 3).generate()?;
            let report = system.learn_task(&task, &fit);
            println!("  {report}");
        }
        let dep = system.deployment()?;
        println!(
            "  deployment: {:.2} mm² total, write energy/step limited to the SRAM branch\n",
            dep.total_area().as_mm2()
        );
    }
    Ok(())
}
