//! Design-space exploration at the paper's workload scale.
//!
//! Sweeps the N:M pattern across the ResNet-50 + Rep-Net profile and
//! reports area, inference power (leakage/read split), and training-step
//! EDP for each hybrid configuration next to the two dense baselines —
//! i.e. the raw material behind Fig. 7 and Fig. 8, plus the patterns the
//! paper did not show.
//!
//! Run with: `cargo run --release --example design_space`

use pim_arch::edp::{fig8_series, hybrid_training_step};
use pim_arch::mapper::Mapper;
use pim_arch::workload::ModelProfile;
use pim_sparse::NmPattern;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let (backbone, repnet) = ModelProfile::resnet50_repnet();
    let merged = ModelProfile::merged(&backbone, &repnet);
    println!("workload: {backbone}");
    println!("          {repnet}\n");

    let mapper = Mapper::dac24();
    let sram = mapper.map_dense_sram(&merged)?;
    let mram = mapper.map_dense_mram(&merged, sram.latency)?;
    println!(
        "{:<16} {:>12} {:>14} {:>14} {:>12}",
        "design", "area mm²", "power (leak)", "power (read)", "norm area"
    );
    let base_area = sram.area;
    for dep in [&sram, &mram] {
        println!(
            "{:<16} {:>12.1} {:>14} {:>14} {:>11.3}x",
            if dep.name.contains("SRAM") {
                "dense SRAM[29]"
            } else {
                "dense MRAM[30]"
            },
            dep.area.as_mm2(),
            dep.leakage_power().to_string(),
            dep.read_power().to_string(),
            dep.area.ratio(base_area)
        );
    }

    let patterns = [
        NmPattern::new(2, 4)?,
        NmPattern::new(1, 4)?,
        NmPattern::new(2, 8)?,
        NmPattern::new(1, 8)?,
        NmPattern::new(1, 16)?,
    ];
    for pattern in patterns {
        let hybrid = mapper.map_hybrid(&backbone, &repnet, pattern)?;
        let step = hybrid_training_step(&mapper, &backbone, &repnet, pattern)?;
        println!(
            "{:<16} {:>12.1} {:>14} {:>14} {:>11.3}x   (train-step EDP {:.3e})",
            format!("hybrid {pattern}"),
            hybrid.total_area().as_mm2(),
            hybrid.leakage_power().to_string(),
            hybrid.read_power().to_string(),
            hybrid.total_area().ratio(base_area),
            step.edp()
        );
    }

    println!("\n== Fig. 8 series (normalized to Ours 1:8) ==");
    let series = fig8_series(&mapper, &backbone, &repnet)?;
    let norm = series.last().expect("six bars").edp();
    for cost in &series {
        println!("  {:<28} {:>10.3}x", cost.name, cost.edp() / norm);
    }
    Ok(())
}
