//! Design-space exploration: sweep, prune, measure, tune.
//!
//! Enumerates the dac24 neighborhood of the architecture grid (N:M
//! pattern × SRAM tile × weight precision × worker/thread split ×
//! pool spawn threshold),
//! evaluates every valid point with the analytic `pim-arch` roll-up,
//! prunes to the {latency, energy, area, EDP} Pareto frontier, promotes
//! the lowest-EDP survivors to real PE micro-benches, and writes the
//! result as `TUNED.json`. The winning configuration's serving knobs are
//! then fed to a `RuntimeBuilder` and shown to produce bit-exact logits
//! against the hard-coded defaults.
//!
//! Run with: `cargo run --release --example dse`

use pim_dse::{run_sweep, SweepOptions, SweepSpace, Tier, TunedDoc, Workload};
use pim_nn::models::{Backbone, BackboneConfig, RepNet, RepNetConfig};
use pim_nn::tensor::Tensor;
use pim_runtime::{CompiledModel, Runtime};
use pim_telemetry::TelemetryRegistry;
use std::path::Path;

fn main() {
    println!("=== pim-dse: design-space exploration ===\n");

    // -- Sweep -------------------------------------------------------------
    let space = SweepSpace::dac24_neighborhood();
    let workload = Workload::resnet50_repnet();
    let registry = TelemetryRegistry::new();
    println!(
        "sweeping {} grid points on `{}` (analytic tier)...",
        space.grid_size(),
        workload.name
    );
    let outcome = run_sweep(&space, &workload, &SweepOptions::default(), &registry)
        .expect("sweep of the dac24 neighborhood");
    println!(
        "evaluated {} valid points ({} invalid), frontier size {}\n",
        outcome.evaluated,
        outcome.invalid,
        outcome.frontier.len()
    );

    // -- Frontier table ----------------------------------------------------
    println!(
        "{:<42} {:>9} {:>12} {:>14} {:>9} {:>14}",
        "config", "tier", "latency", "energy", "area", "EDP"
    );
    for p in &outcome.frontier {
        println!(
            "{:<42} {:>9} {:>9.1} us {:>11.1} nJ {:>5.2} mm2 {:>11.3e} pJ.ns",
            p.label,
            p.tier,
            p.cost.latency_ns / 1e3,
            p.cost.energy_pj / 1e3,
            p.cost.area_mm2,
            p.edp(),
        );
    }
    let best = &outcome.doc.best;
    println!(
        "\nbest EDP: {} ({}, {:.1} ns/matvec on the host simulator)",
        best.label,
        best.tier,
        best.measured_ns.unwrap_or(f64::NAN)
    );
    assert_eq!(best.tier, Tier::Measured, "the winner is always promoted");
    assert!(
        outcome.frontier.iter().any(|p| p.tier == Tier::Analytic),
        "runner-up frontier rows stay analytic"
    );

    // -- TUNED.json round-trip ---------------------------------------------
    let path = Path::new("TUNED.json");
    outcome.doc.save(path).expect("write TUNED.json");
    let reloaded = TunedDoc::load(path)
        .expect("readable")
        .expect("present and valid");
    assert_eq!(
        reloaded.best.config, outcome.doc.best.config,
        "the winning configuration survives the JSON round-trip exactly"
    );
    println!(
        "wrote TUNED.json ({} frontier points) and verified the round-trip",
        reloaded.frontier.len()
    );

    // -- Tuned defaults drive the runtime, bit-exactly ----------------------
    let defaults = reloaded.runtime_defaults();
    println!(
        "\ntuned runtime defaults: {} workers x {} threads, batch {}, queue {}, spawn >= {} ops",
        defaults.workers,
        defaults.par_threads,
        defaults.max_batch,
        defaults.queue_capacity,
        defaults.spawn_threshold
    );

    let model = RepNet::new(
        Backbone::new(BackboneConfig::tiny()),
        RepNetConfig {
            rep_channels: 4,
            num_classes: 10,
            seed: 7,
        },
    );
    let shape: Vec<usize> = CompiledModel::compile("repnet-tiny", &model)
        .expect("model fits")
        .input_shape()
        .to_vec();
    let input = Tensor::from_fn(&shape, |i| ((i * 13 + 5) % 17) as f32 / 16.0);

    let run = |tuned: Option<pim_runtime::TunedDefaults>| {
        let compiled = CompiledModel::compile("repnet-tiny", &model).expect("model fits");
        let mut builder = Runtime::builder();
        if let Some(t) = tuned {
            builder = builder.tuned(t);
        }
        let id = builder.register(compiled);
        let runtime = builder.start();
        let logits = runtime.infer(id, &input).expect("inference").logits;
        runtime.shutdown();
        logits
    };
    let baseline = run(None);
    let tuned = run(Some(defaults));
    assert_eq!(
        baseline, tuned,
        "tuned serving knobs change scheduling, never arithmetic"
    );
    println!(
        "bit-exactness: tuned runtime logits == default runtime logits ({} classes)",
        baseline.len()
    );
}
