//! NVM non-ideality study: MRAM write instability and endurance.
//!
//! The paper's introduction motivates the hybrid design with NVM's "high
//! write energy, latency, and instability" and the endurance limits of
//! NVM cells under training. This example quantifies both on the
//! reproduction's own machinery:
//!
//! 1. **Write instability** — the `write_fault_sweep` ablation runs a
//!    backbone tile through the MRAM PE's stochastic write channel across
//!    error rates and write-verify retry budgets;
//! 2. **Model-level impact** — the pretrained backbone's weights are
//!    bit-flipped at the residual corruption rates and the upstream
//!    accuracy re-measured;
//! 3. **Endurance** — lifetime estimates for finetune-all on MRAM/RRAM
//!    versus the hybrid's SRAM-side updates.
//!
//! Run with: `cargo run --release --example fault_injection`

use pim_core::experiments::ablation::write_fault_sweep;
use pim_data::SyntheticSpec;
use pim_device::endurance::EnduranceModel;
use pim_device::units::Latency;
use pim_nn::layers::Param;
use pim_nn::models::{Backbone, BackboneConfig, PretrainNet};
use pim_nn::quant::QuantParams;
use pim_nn::train::{evaluate, fit, FitConfig, Model};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::error::Error;

/// Quantizes every backbone weight to INT8 and flips stored bits with
/// probability `rate` (the residual corruption after write-verify).
fn corrupt_backbone(net: &mut PretrainNet, rate: f64, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    Model::params(net.backbone_mut(), &mut |p: &mut Param| {
        let params = QuantParams::calibrate(p.value.as_slice());
        for v in p.value.as_mut_slice() {
            let mut q = params.quantize_value(*v) as u8;
            for bit in 0..8 {
                if rng.random_range(0.0..1.0f64) < rate {
                    q ^= 1 << bit;
                }
            }
            *v = params.dequantize_value(q as i8);
        }
    });
}

fn main() -> Result<(), Box<dyn Error>> {
    println!("== 1. PE-level write-fault sweep (1024x8 backbone tile, 1:4) ==");
    let points = write_fault_sweep(&[1e-4, 1e-3, 1e-2], &[0, 1, 3]);
    for p in &points {
        println!("  {p}");
    }

    println!("\n== 2. Model-level accuracy under residual bit corruption ==");
    let upstream = SyntheticSpec::upstream_pretraining()
        .with_geometry(8, 3)
        .generate()?;
    let mut net = PretrainNet::new(
        Backbone::new(BackboneConfig {
            in_channels: 3,
            image_size: 8,
            stage_widths: vec![16, 32],
            blocks_per_stage: 1,
            seed: 1,
        }),
        upstream.train.classes(),
        7,
    );
    fit(
        &mut net,
        &upstream.train,
        &FitConfig {
            epochs: 8,
            batch_size: 32,
            lr: 0.05,
            momentum: 0.9,
            weight_decay: 1e-4,
            seed: 3,
        },
    );
    let clean = evaluate(&mut net, &upstream.test, 64);
    println!("  corruption 0e0    : {:.2}% (clean)", 100.0 * clean);
    for rate in [1e-5, 1e-4, 1e-3, 1e-2] {
        let mut corrupted = net.clone();
        corrupt_backbone(&mut corrupted, rate, 42);
        let acc = evaluate(&mut corrupted, &upstream.test, 64);
        println!("  corruption {rate:.0e}: {:.2}%", 100.0 * acc);
    }

    println!("\n== 3. Endurance under continual learning ==");
    let step = Latency::from_ms(1.0); // one training step per millisecond
    let weights = 26_000_000u64; // the paper's ~26 MB model
    let cells = weights * 8;
    let year = 3.156e16; // ns
    for (label, model, writes) in [
        (
            "finetune-all on MRAM",
            EnduranceModel::stt_mram(),
            weights * 8 / 2,
        ),
        (
            "finetune-all on RRAM",
            EnduranceModel::rram(),
            weights * 8 / 2,
        ),
        (
            "hybrid: 5% Rep-Net at 1:8, in SRAM",
            EnduranceModel::sram(),
            weights / 20 / 8,
        ),
    ] {
        let life = model.lifetime(writes, cells, step);
        let years = life.as_ns() / year;
        if years.is_infinite() {
            println!("  {label:<36} lifetime: unlimited");
        } else {
            println!("  {label:<36} lifetime: {years:.2e} years");
        }
    }
    println!("\nThe hybrid moves every frequently-written weight into SRAM: the");
    println!("endurance and instability budget of the NVM is simply never spent.");
    Ok(())
}
