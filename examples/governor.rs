//! SLO-aware adaptive governance over a mixed-priority bursty workload.
//!
//! Three tenants share a 2-replica fleet: an `interactive` tenant
//! (High priority, tight p99 SLO) and two background tenants (`batch`
//! at Normal, `best-effort` at Low). Each tenant's branch pair — the
//! full-quality 1:4 artifact and its cheaper 1:8 sibling — is published
//! together by `pim-learn`'s `compiled_pair`, from one training state.
//!
//! The load runs open-loop in three wall-clock phases: calm, a burst
//! that floods the background tenants far past the fleet's service
//! rate, then calm again. A governor ticks on a fixed period the whole
//! time, sampling pressure from the telemetry the stack already emits:
//! under the burst it demotes the Low tenant first, then Normal, widens
//! batch coalescing, and finally sheds at admission — and when the
//! burst clears it unwinds every rung in exact reverse order.
//!
//! Outcomes asserted (and merged into `BENCH_kernels.json` for
//! `bench-gate`):
//! * `governor_p99_ms_hi_prio` — the interactive tenant's p99 wall
//!   latency held under its SLO through the burst,
//! * `governor_shed_frac` — the fraction of all governed submissions
//!   refused at admission (bounded, not runaway),
//! * `governor_recovery_ticks` — ticks from end-of-load until the
//!   ladder fully unwinds (bounded recovery time).
//!
//! The high-priority tenant is never demoted — its SLO is what the
//! ladder is defending. Set `GOVERNOR_REDUCED=1` for the CI smoke
//! variant (same shape, smaller counts).
//!
//! Run with: `cargo run --release --example governor`

use pim_bench::merge_bench_json;
use pim_cluster::ClusterBuilder;
use pim_data::SyntheticSpec;
use pim_governor::{
    Governor, GovernorConfig, GovernorError, GovernorEvent, LadderConfig, Priority, TenantSlo,
    TenantSpec, Tier,
};
use pim_learn::{LearnEngine, OnlineLearnerConfig, WritePolicy};
use pim_nn::models::{Backbone, BackboneConfig, RepNet, RepNetConfig};
use pim_nn::tensor::Tensor;
use pim_runtime::Telemetry;
use pim_sparse::NmPattern;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

const NUM_CLASSES: usize = 10;
const REPLICAS: usize = 2;
const TICK_MS: u64 = 15;

/// SLO ceilings (mirrored by `bench-gate`).
const SLO_HI_PRIO_P99_MS: f64 = 250.0;
const SLO_SHED_FRAC: f64 = 0.90;
const SLO_RECOVERY_TICKS: f64 = 400.0;

/// One tenant's open-loop schedule: mean inter-arrival gaps in µs, plus
/// how many requests arrive back-to-back per burst wakeup (sleep
/// granularity alone cannot out-pace the fleet's batched service rate,
/// so bursting tenants arrive in clumps — as real queue floods do).
struct TenantLoad {
    name: &'static str,
    priority: Priority,
    slo: TenantSlo,
    seed: u64,
    calm_gap_us: f64,
    burst_gap_us: f64,
    burst_group: usize,
}

/// xorshift64 → uniform in (0, 1].
fn uniform(state: &mut u64) -> f64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    ((*state >> 11) as f64 + 1.0) / (1u64 << 53) as f64
}

fn exp_gap_us(state: &mut u64, mean_us: f64) -> f64 {
    -mean_us * uniform(state).ln()
}

fn tenant_pair(name: &str, seed: u64) -> (pim_runtime::CompiledModel, pim_runtime::CompiledModel) {
    let mut model = RepNet::new(
        Backbone::new(BackboneConfig::tiny()),
        RepNetConfig {
            rep_channels: 4,
            num_classes: NUM_CLASSES,
            seed,
        },
    );
    // Full-quality branch: the paper's 1:4 scheme.
    model.apply_pattern(NmPattern::one_of_four());
    let engine = LearnEngine::new(
        name,
        model,
        OnlineLearnerConfig {
            replay_capacity: 64,
            batch_size: 8,
            seed,
            ..OnlineLearnerConfig::default()
        },
        WritePolicy::hybrid_dac24(1 << 22),
    )
    .expect("model fits the PEs");
    engine
        .compiled_pair(NmPattern::one_of_eight())
        .expect("degraded branch compiles")
}

fn main() {
    let reduced = std::env::var("GOVERNOR_REDUCED").is_ok_and(|v| v == "1");
    // Wall-clock phase lengths. The reduced variant keeps the same shape
    // (calm → saturating burst → calm) at half the duration.
    let (calm_ms, burst_ms, cooldown_ms) = if reduced {
        (200u64, 500u64, 300u64)
    } else {
        (400u64, 1_000u64, 600u64)
    };
    println!("=== pim-governor: adaptive SLO governance under a mixed-priority burst ===");
    println!(
        "scenario: {} (calm {calm_ms} ms, burst {burst_ms} ms, cooldown {cooldown_ms} ms)\n",
        if reduced { "reduced" } else { "full" }
    );

    // -- Tenants -----------------------------------------------------------
    let loads = [
        TenantLoad {
            name: "interactive",
            priority: Priority::High,
            slo: TenantSlo {
                p99_latency: Duration::from_millis(SLO_HI_PRIO_P99_MS as u64),
                energy_per_request_pj: f64::INFINITY,
            },
            seed: 11,
            calm_gap_us: 4_000.0,
            burst_gap_us: 4_000.0, // steady — the burst comes from the others
            burst_group: 1,
        },
        TenantLoad {
            name: "batch",
            priority: Priority::Normal,
            slo: TenantSlo::default(),
            seed: 22,
            calm_gap_us: 8_000.0,
            burst_gap_us: 600.0,
            burst_group: 16,
        },
        TenantLoad {
            name: "best-effort",
            priority: Priority::Low,
            slo: TenantSlo::default(),
            seed: 33,
            calm_gap_us: 8_000.0,
            burst_gap_us: 400.0,
            burst_group: 24,
        },
    ];

    let telemetry = Telemetry::new();
    let mut builder = Governor::builder()
        .config(GovernorConfig {
            ladder: LadderConfig {
                high_watermark: 0.5,
                low_watermark: 0.2,
                demote_after: 2,
                promote_after: 2,
                dwell_ticks: 2,
            },
            ..GovernorConfig::default()
        })
        .telemetry(telemetry.clone());
    let ids: Vec<_> = loads
        .iter()
        .map(|l| {
            let (full, degraded) = tenant_pair(l.name, l.seed);
            println!(
                "tenant {:<12} {:<7} full={full} degraded={degraded}",
                l.name, l.priority
            );
            builder.tenant(TenantSpec {
                name: l.name.into(),
                priority: l.priority,
                slo: l.slo,
                full,
                degraded,
            })
        })
        .collect();
    let governor = builder
        .start(
            ClusterBuilder::new()
                .replicas(REPLICAS)
                .workers(1)
                .queue_capacity(8)
                .max_batch(8)
                .max_wait(Duration::from_micros(500)),
        )
        .expect("compatible tenant pairs");
    println!(
        "\nfleet: {} replicas, {} healthy; tick period {TICK_MS} ms\n",
        governor.cluster().replica_count(),
        governor.cluster().healthy_replicas()
    );

    // -- Drive -------------------------------------------------------------
    let total_ms = calm_ms + burst_ms + cooldown_ms;
    let hi_latencies_ns: Mutex<Vec<f64>> = Mutex::new(Vec::new());
    let drivers_done = AtomicBool::new(false);
    let recovery_ticks: Mutex<Option<u64>> = Mutex::new(None);
    let start = Instant::now();
    std::thread::scope(|scope| {
        // One open-loop driver per tenant.
        for (load, &id) in loads.iter().zip(&ids) {
            let governor = &governor;
            let hi_latencies_ns = &hi_latencies_ns;
            scope.spawn(move || {
                let input: Tensor = SyntheticSpec::cifar10_like()
                    .with_geometry(8, 1)
                    .with_samples(1, 4)
                    .generate()
                    .expect("synthetic task")
                    .test
                    .inputs()
                    .batch_item(0);
                let mut rng = load.seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
                loop {
                    let elapsed_ms = start.elapsed().as_millis() as u64;
                    if elapsed_ms >= total_ms {
                        break;
                    }
                    let in_burst = elapsed_ms >= calm_ms && elapsed_ms < calm_ms + burst_ms;
                    let gap = if in_burst {
                        load.burst_gap_us
                    } else {
                        load.calm_gap_us
                    };
                    std::thread::sleep(Duration::from_micros(exp_gap_us(&mut rng, gap) as u64));
                    let group = if in_burst { load.burst_group } else { 1 };
                    for _ in 0..group {
                        match governor.submit(id, &input) {
                            Ok(ticket) if load.priority == Priority::High => {
                                let submitted = Instant::now();
                                scope.spawn(move || {
                                    ticket.wait().expect("accepted ticket answered");
                                    hi_latencies_ns
                                        .lock()
                                        .expect("latency lock")
                                        .push(submitted.elapsed().as_nanos() as f64);
                                });
                            }
                            // Background tickets are fire-and-forget; the
                            // fleet serves (or drops the reply of) each.
                            Ok(_ticket) => {}
                            // Open loop: shed/saturated arrivals are
                            // dropped, never retried (they're in the
                            // ledger).
                            Err(GovernorError::Shed { .. }) | Err(GovernorError::Cluster(_)) => {}
                            Err(e) => panic!("submit failed: {e}"),
                        }
                    }
                }
            });
        }
        // The governor tick loop: fixed period, live pressure sampling;
        // after the drivers stop, keep ticking until the ladder fully
        // unwinds and record how many ticks that recovery took.
        let governor = &governor;
        let drivers_done = &drivers_done;
        let recovery_ticks = &recovery_ticks;
        scope.spawn(move || {
            let mut ticks_after_load = 0u64;
            loop {
                std::thread::sleep(Duration::from_millis(TICK_MS));
                governor.tick();
                if start.elapsed().as_millis() as u64 >= total_ms {
                    drivers_done.store(true, Ordering::Relaxed);
                    ticks_after_load += 1;
                    if governor.report().ladder_depth == 0 {
                        *recovery_ticks.lock().expect("recovery lock") = Some(ticks_after_load);
                        break;
                    }
                    assert!(
                        ticks_after_load < 2_000,
                        "ladder failed to unwind after the burst"
                    );
                }
            }
        });
    });

    let recovery = recovery_ticks
        .lock()
        .expect("recovery lock")
        .expect("tick loop recorded recovery");
    let (stats, report) = governor.shutdown();

    // -- Outcomes ----------------------------------------------------------
    let mut hi_ns = hi_latencies_ns.into_inner().expect("latency lock");
    assert!(!hi_ns.is_empty(), "interactive tenant saw traffic");
    hi_ns.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let nearest_rank = |p: f64| -> f64 {
        let rank = ((p * hi_ns.len() as f64).ceil() as usize).clamp(1, hi_ns.len());
        hi_ns[rank - 1]
    };
    let hi_p99_ms = nearest_rank(0.99) / 1e6;
    let shed_frac = report.shed_frac();

    println!("{report}");
    println!("decision trace:");
    for e in &report.events {
        println!("  {e}");
    }
    println!("\ncluster admission: {:?}", stats.rejection_fraction());
    println!("hi-prio wall p99     : {hi_p99_ms:.3} ms  (SLO {SLO_HI_PRIO_P99_MS} ms)");
    println!("shed fraction        : {shed_frac:.4}  (ceiling {SLO_SHED_FRAC})");
    println!("recovery ticks       : {recovery}  (ceiling {SLO_RECOVERY_TICKS})");

    // The ladder moved: background tenants demoted under the burst and
    // the fleet fully recovered afterwards.
    let hi_idx = ids[0].index();
    assert!(
        report
            .events
            .iter()
            .any(|e| matches!(e, GovernorEvent::Demoted { .. })),
        "the burst must demote at least one background tenant"
    );
    assert!(
        !report
            .events
            .iter()
            .any(|e| matches!(e, GovernorEvent::Demoted { tenant, .. } if *tenant == hi_idx)),
        "the high-priority tenant must never demote"
    );
    assert_eq!(report.ladder_depth, 0, "full recovery");
    for (l, &id) in loads.iter().zip(&ids) {
        assert_eq!(
            governor_tier(&report, id.index()),
            Tier::Full,
            "{} back at full quality",
            l.name
        );
    }
    assert!(report.conserves(), "per-tenant ledgers conserve");
    assert!(
        hi_p99_ms <= SLO_HI_PRIO_P99_MS,
        "hi-prio p99 {hi_p99_ms:.3} ms exceeds the {SLO_HI_PRIO_P99_MS} ms SLO"
    );
    assert!(
        shed_frac <= SLO_SHED_FRAC,
        "shed fraction {shed_frac:.4} exceeds the {SLO_SHED_FRAC} ceiling"
    );
    assert!(
        (recovery as f64) <= SLO_RECOVERY_TICKS,
        "recovery took {recovery} ticks, ceiling {SLO_RECOVERY_TICKS}"
    );
    println!("SLOs                 : PASS");

    // -- Publish for bench-gate -------------------------------------------
    let out = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_kernels.json");
    merge_bench_json::<&str>(
        &out,
        "kernels",
        &[],
        &[
            ("governor_p99_ms_hi_prio", hi_p99_ms),
            ("governor_shed_frac", shed_frac),
            ("governor_recovery_ticks", recovery as f64),
        ],
    )
    .expect("writable workspace root");
}

fn governor_tier(report: &pim_governor::GovernorReport, tenant: usize) -> Tier {
    report.tenants[tenant].tier
}
