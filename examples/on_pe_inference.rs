//! Runs a trained Rep-Net's learnable branch end-to-end on the
//! cycle-level SRAM PEs and compares against the NN-side INT8 model.
//!
//! Run with: `cargo run --release --example on_pe_inference`

use pim_core::pe_inference::PeRepNet;
use pim_core::{HybridSystem, SystemConfig};
use pim_data::SyntheticSpec;
use pim_nn::layers::predictions;
use pim_nn::models::BackboneConfig;
use pim_nn::train::{FitConfig, Model};
use pim_sparse::NmPattern;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let fit = FitConfig {
        epochs: 10,
        batch_size: 32,
        lr: 0.05,
        momentum: 0.9,
        weight_decay: 1e-4,
        seed: 3,
    };
    let upstream = SyntheticSpec::upstream_pretraining()
        .with_geometry(8, 3)
        .generate()?;
    let mut system = HybridSystem::pretrain(
        SystemConfig {
            backbone: BackboneConfig {
                in_channels: 3,
                image_size: 8,
                stage_widths: vec![8, 16],
                blocks_per_stage: 1,
                seed: 1,
            },
            rep_channels: 4,
            pattern: Some(NmPattern::new(1, 4)?),
            seed: 7,
        },
        &upstream,
        &fit,
    );
    let task = SyntheticSpec::cifar10_like()
        .with_geometry(8, 3)
        .with_samples(10, 8)
        .generate()?;
    let report = system.learn_task(&task, &fit);
    println!("trained model: {report}");

    println!("\n== compiling the learnable branch onto SRAM PEs ==");
    let mut compiled = PeRepNet::compile(system.model_mut())?;
    println!("{compiled}");

    let indices: Vec<usize> = (0..task.test.len()).collect();
    let (x, labels) = task.test.batch(&indices);
    let (pe_preds, stats) = compiled.classify(system.model_mut(), &x);
    let pe_correct = pe_preds.iter().zip(&labels).filter(|(p, l)| p == l).count();
    println!(
        "\nPE-executed accuracy: {:.2}% over {} samples",
        100.0 * pe_correct as f64 / labels.len() as f64,
        labels.len()
    );
    println!(
        "PE work: {} matvecs, {} total tile-cycles",
        stats.matvecs, stats.cycles
    );

    // Agreement with the NN-side INT8 reference.
    let mut quantized = system.model().clone();
    quantized.quantize_weights_int8();
    quantized.set_int8_eval(true);
    let nn_preds = predictions(&quantized.predict(&x, false));
    let agree = pe_preds
        .iter()
        .zip(&nn_preds)
        .filter(|(a, b)| a == b)
        .count();
    println!(
        "agreement with quantized NN reference: {:.1}%",
        100.0 * agree as f64 / labels.len() as f64
    );
    Ok(())
}
