//! Single-PE micro-trace: watch one sparse matrix travel through both PE
//! designs and the transposed buffer, with cycle and energy reports.
//!
//! Run with: `cargo run --release --example pe_trace`

use pim_arch::core_sim::CoreSim;
use pim_pe::{MramSparsePe, SparsePe, SramSparsePe, TransposedSramPe};
use pim_sparse::gemm::{dense_matvec, masked_dense};
use pim_sparse::prune::prune_magnitude;
use pim_sparse::{CscMatrix, Matrix, NmPattern};
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    // A 128×8 weight tile at 1:4 sparsity.
    let pattern = NmPattern::new(1, 4)?;
    let dense = Matrix::from_fn(128, 8, |r, c| {
        (((r * 37 + c * 13) % 251) as i32 - 125) as i8
    });
    let mask = prune_magnitude(&dense, pattern)?;
    let csc = CscMatrix::compress(&dense, &mask)?;
    println!("tile: {csc}");
    println!(
        "storage: dense {} bits -> compressed {} bits",
        dense.len() * 8,
        csc.storage_bits(8)
    );

    let x: Vec<i8> = (0..128).map(|i| ((i * 7) % 200) as i8).collect();
    let x_wide: Vec<i32> = x.iter().map(|&v| v as i32).collect();
    let reference = dense_matvec(&masked_dense(&dense, &mask)?, &x_wide)?;

    println!("\n== SRAM sparse PE (bit-serial, 8 column groups) ==");
    let mut sram = SramSparsePe::new();
    let load = sram.load(&csc)?;
    println!("load : {} cycles, {}", load.cycles, load.energy);
    let run = sram.matvec(&x)?;
    println!("mv   : {} cycles, {}", run.cycles, run.energy);
    println!("exact: {}", run.outputs == reference);

    println!("\n== MRAM sparse PE (near-memory, 3-stage pipeline) ==");
    let mut mram = MramSparsePe::new();
    let load = mram.load(&csc)?;
    println!(
        "load : {} cycles over {} ({} MTJ bits toggled), {}",
        load.cycles, load.latency, load.bits_written, load.energy
    );
    let run = mram.matvec(&x)?;
    println!("mv   : {} cycles, {}", run.cycles, run.energy);
    println!("exact: {}", run.outputs == reference);

    println!("\n== Transposed SRAM buffer (backprop eq. 1) ==");
    let masked = mask.apply(&dense)?;
    let mut buf = TransposedSramPe::new();
    let load = buf.write_transposed(&masked)?;
    println!(
        "write Wᵀ: {} cycles, {} bits, {}",
        load.cycles, load.bits_written, load.energy
    );
    let e: Vec<i32> = (0..8).map(|i| i * 3 - 12).collect();
    let back = buf.matvec(&e)?;
    let expect = dense_matvec(&masked.transposed(), &e)?;
    println!(
        "e_prev : {} cycles, exact: {}",
        back.cycles,
        back.outputs == expect
    );

    println!("\n== cumulative stats ==");
    println!("SRAM PE: {}", sram.stats());
    println!("MRAM PE: {}", mram.stats());

    println!("\n== executed multi-PE core (scheduler + shared bus) ==");
    let layer = Matrix::from_fn(512, 64, |r, c| {
        (((r * 13 + c * 29) % 251) as i32 - 125) as i8
    });
    for max_pes in [1, 4, 16] {
        let mut core = CoreSim::load_layer(&layer, pattern, max_pes)?;
        let xs: Vec<i8> = (0..512).map(|i| (i % 180) as i8).collect();
        let run = core.matvec(&xs)?;
        println!("  {core}");
        println!("    -> {run}");
    }
    Ok(())
}
