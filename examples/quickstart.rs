//! Quickstart: pretrain a backbone, learn one downstream task on the
//! hybrid MRAM-SRAM system, and print the accuracy + hardware report.
//!
//! Run with: `cargo run --release --example quickstart`

use pim_core::{HybridSystem, SystemConfig};
use pim_data::SyntheticSpec;
use pim_nn::models::BackboneConfig;
use pim_nn::train::FitConfig;
use pim_sparse::NmPattern;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    // A compact configuration that runs in seconds.
    let config = SystemConfig {
        backbone: BackboneConfig {
            in_channels: 3,
            image_size: 8,
            stage_widths: vec![8, 16],
            blocks_per_stage: 1,
            seed: 1,
        },
        rep_channels: 4,
        pattern: Some(NmPattern::new(1, 4)?),
        seed: 7,
    };
    let fit = FitConfig {
        epochs: 10,
        batch_size: 32,
        lr: 0.05,
        momentum: 0.9,
        weight_decay: 1e-4,
        seed: 3,
    };

    println!("== pretraining backbone on the upstream task ==");
    let upstream = SyntheticSpec::upstream_pretraining()
        .with_geometry(8, 3)
        .generate()?;
    let mut system = HybridSystem::pretrain(config, &upstream, &fit);
    if let Some((fp32, int8)) = system.upstream_accuracy(&upstream.test) {
        println!(
            "backbone@upstream: fp32 {:.1}%, int8 {:.1}%",
            100.0 * fp32,
            100.0 * int8
        );
    }

    println!("\n== learning a downstream task (CIFAR-10 stand-in) ==");
    let task = SyntheticSpec::cifar10_like()
        .with_geometry(8, 3)
        .with_samples(10, 5)
        .generate()?;
    let report = system.learn_task(&task, &fit);
    println!("{report}");

    println!("\n== architecture deployment of this exact model ==");
    let dep = system.deployment()?;
    println!("MRAM branch: {}", dep.mram);
    println!("SRAM branch: {}", dep.sram);
    println!(
        "total area {:.3} mm² ({:.1}% SRAM), inference power {}",
        dep.total_area().as_mm2(),
        100.0 * dep.sram_area_fraction(),
        dep.average_power()
    );

    println!("\n== bit-exactness of the trained layers on the cycle-level PEs ==");
    for report in system.verify_on_pes()? {
        println!("  {report}");
    }
    Ok(())
}
