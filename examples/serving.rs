//! Batched inference serving over the hybrid PE simulators.
//!
//! Compiles a RepNet once, starts a four-worker runtime, and fires 120
//! concurrent synthetic requests at it from eight client threads,
//! printing throughput, p50/p99 simulated latency, and the aggregate
//! energy/EDP bill. A spot-check confirms batched results are bit-exact
//! with sequential single-sample inference.
//!
//! Run with: `cargo run --release --example serving`

use pim_core::pe_inference::PeRepNet;
use pim_data::SyntheticSpec;
use pim_nn::models::{Backbone, BackboneConfig, RepNet, RepNetConfig};
use pim_nn::tensor::Tensor;
use pim_runtime::{CompiledModel, InferResponse, Runtime, RuntimeError};
use std::sync::Mutex;
use std::thread;
use std::time::Duration;

const WORKERS: usize = 4;
const CLIENTS: usize = 8;
const REQUESTS_PER_CLIENT: usize = 15;
const NUM_CLASSES: usize = 10;

fn main() {
    let total_requests = CLIENTS * REQUESTS_PER_CLIENT;
    println!("=== pim-runtime: batched inference serving ===\n");

    // -- Compile once ----------------------------------------------------
    let model = RepNet::new(
        Backbone::new(BackboneConfig::tiny()),
        RepNetConfig {
            rep_channels: 4,
            num_classes: NUM_CLASSES,
            seed: 42,
        },
    );
    let compiled = CompiledModel::compile("repnet-tiny", &model).expect("model fits the PEs");
    println!("compiled {compiled}");
    println!(
        "one-time lowering cost: {} tile loads, {}, {}\n",
        compiled.compile_stats().loads,
        compiled.compile_stats().busy_time,
        compiled.compile_stats().total_energy(),
    );

    // -- Synthetic request stream ----------------------------------------
    let task = SyntheticSpec::cifar10_like()
        .with_geometry(8, 1)
        .with_samples(1, total_requests.div_ceil(NUM_CLASSES))
        .generate()
        .expect("synthetic task");
    let inputs: Vec<Tensor> = (0..total_requests)
        .map(|i| task.test.inputs().batch_item(i))
        .collect();

    // -- Serve ------------------------------------------------------------
    let mut builder = Runtime::builder()
        .workers(WORKERS)
        .queue_capacity(64)
        .max_batch(8)
        .max_wait(Duration::from_millis(1));
    let id = builder.register(compiled);
    let runtime = builder.start();

    let responses: Mutex<Vec<(usize, InferResponse)>> =
        Mutex::new(Vec::with_capacity(total_requests));
    thread::scope(|scope| {
        for client in 0..CLIENTS {
            let runtime = &runtime;
            let inputs = &inputs;
            let responses = &responses;
            scope.spawn(move || {
                for r in 0..REQUESTS_PER_CLIENT {
                    let sample = client * REQUESTS_PER_CLIENT + r;
                    let ticket = loop {
                        match runtime.submit(id, &inputs[sample]) {
                            Ok(t) => break t,
                            // Backpressure: back off and retry.
                            Err(RuntimeError::QueueFull { .. }) => {
                                thread::sleep(Duration::from_micros(200));
                            }
                            Err(e) => panic!("submit failed: {e}"),
                        }
                    };
                    let response = ticket.wait().expect("response");
                    responses
                        .lock()
                        .expect("client lock")
                        .push((sample, response));
                }
            });
        }
    });
    let mut responses = responses.into_inner().expect("client lock");
    responses.sort_by_key(|(sample, _)| *sample);
    let stats = runtime.shutdown();

    // -- Spot-check: batched == sequential, bit for bit -------------------
    let mut reference_model = model.clone();
    let mut reference = PeRepNet::compile(&mut reference_model).expect("compile");
    let mut checked = 0;
    for (sample, response) in responses.iter().take(10) {
        let (logits, _) = reference.predict(&mut reference_model, &inputs[*sample]);
        assert_eq!(
            response.logits,
            logits.as_slice(),
            "sample {sample} diverged from sequential inference"
        );
        checked += 1;
    }
    println!("bit-exactness spot-check: {checked}/10 samples match sequential inference\n");

    // -- Report -----------------------------------------------------------
    assert_eq!(stats.requests_completed as usize, total_requests);
    println!(
        "served {} requests on {WORKERS} workers ({CLIENTS} clients)",
        total_requests
    );
    println!("  wall time          : {:?}", stats.wall_elapsed);
    println!("  throughput         : {:.0} req/s", stats.throughput_rps());
    println!(
        "  batches            : {} (mean {:.2} riders, max {})",
        stats.batches, stats.mean_batch_size, stats.max_batch_size
    );
    println!("  rejected (retried) : {}", stats.requests_rejected);
    println!("  sim latency p50    : {}", stats.p50_latency);
    println!("  sim latency p99    : {}", stats.p99_latency);
    println!("  sim latency mean   : {}", stats.mean_latency);
    println!("  mean queue wait    : {:?}", stats.mean_queue_wait);
    println!("  total PE energy    : {}", stats.total_energy);
    println!("  total PE busy time : {}", stats.simulated_busy);
    println!("  EDP                : {:.3e} pJ·ns", stats.edp);
    println!(
        "  PE matvecs / MACs  : {} / {}",
        stats.pe_matvecs, stats.macs
    );
}
