//! Live observability tour: one shared [`Telemetry`] bundle wired through
//! a serving [`Runtime`] and a continual-learning [`LearnEngine`] at the
//! same time. While traffic flows and the model retrains/republishes, the
//! example prints a per-stage latency breakdown (serve: queue → batch_form
//! → compute → reply; learn: step → preflight → write_back → swap) and the
//! per-channel PE energy counters — then proves at shutdown that the
//! telemetry mirror agrees with the authoritative `PeStats` ledgers to the
//! bit, renders the full Prometheus exposition, and saves the span trace
//! as JSONL.
//!
//! Run with: `cargo run --release --example telemetry`

use pim_learn::{LearnEngine, OnlineLearnerConfig, WritePolicy};
use pim_nn::models::{Backbone, BackboneConfig, RepNet, RepNetConfig};
use pim_nn::tensor::Tensor;
use pim_pe::telemetry::ENERGY_CHANNELS;
use pim_pe::PeTelemetry;
use pim_runtime::{Runtime, Telemetry};
use pim_telemetry::{exponential_buckets, TelemetryRegistry, TraceDump};
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

fn sample(i: usize) -> Tensor {
    Tensor::from_vec(
        vec![1, 8, 8],
        (0..64).map(|v| ((v * 3 + i) % 11) as f32 / 11.0).collect(),
    )
    .expect("sample shape")
}

/// Re-acquires the stage histograms and energy counters through the
/// registry's get-or-register semantics (same name + labels → same
/// series) and prints the live breakdown — exactly what a dashboard
/// polling `render_prometheus` would compute.
fn print_breakdown(registry: &TelemetryRegistry) {
    let seconds = exponential_buckets(1e-6, 4.0, 13);
    println!(
        "  {:<18} {:>6} {:>12} {:>12}",
        "stage", "count", "mean µs", "p95 µs"
    );
    for stage in pim_runtime::telemetry::STAGES {
        let h = registry.histogram_with(
            pim_runtime::telemetry::STAGE_METRIC,
            "Wall-clock seconds spent per serving stage",
            &seconds,
            &[("stage", stage)],
        );
        println!(
            "  serve/{:<12} {:>6} {:>12.2} {:>12.2}",
            stage,
            h.count(),
            h.mean() * 1e6,
            h.quantile(0.95) * 1e6
        );
    }
    for stage in pim_learn::telemetry::STAGES {
        let h = registry.histogram_with(
            pim_learn::telemetry::STAGE_METRIC,
            "Wall-clock seconds spent per continual-learning stage",
            &seconds,
            &[("stage", stage)],
        );
        println!(
            "  learn/{:<12} {:>6} {:>12.2} {:>12.2}",
            stage,
            h.count(),
            h.mean() * 1e6,
            h.quantile(0.95) * 1e6
        );
    }
    for source in ["serve", "learn"] {
        let pe = PeTelemetry::register(registry, source);
        let energy = pe.energy_pj();
        print!("  energy[{source}]  ");
        for (channel, pj) in ENERGY_CHANNELS.iter().zip(energy) {
            print!("{channel} {pj:.1} pJ  ");
        }
        println!("(total {:.1} pJ)", pe.total_energy_pj());
    }
}

fn main() {
    let telemetry = Telemetry::new();

    let model = RepNet::new(
        Backbone::new(BackboneConfig::tiny()),
        RepNetConfig {
            rep_channels: 4,
            num_classes: 3,
            seed: 5,
        },
    );
    let mut engine = LearnEngine::new(
        "live",
        model,
        OnlineLearnerConfig {
            replay_capacity: 32,
            batch_size: 4,
            seed: 21,
            ..OnlineLearnerConfig::default()
        },
        // Finite bit budget so pim_learn_budget_used_ratio moves visibly
        // (the paper's SRAM deployment is effectively unbounded).
        WritePolicy::hybrid_dac24(1 << 20).with_bit_budget(16384.0),
    )
    .expect("adaptor fits the PEs");
    engine.attach_telemetry(&telemetry);

    // ONE worker on purpose: with a single consumer the telemetry
    // counters accumulate the exact same f64 additions, in the exact same
    // order, as the runtime's own StatsCollector ledger — which is what
    // makes the bit-exact assertions below hold (f64 addition is
    // order-sensitive, so a worker pool interleaving deltas would agree
    // only approximately).
    let mut builder = Runtime::builder()
        .workers(1)
        .max_wait(Duration::ZERO)
        .telemetry(Arc::clone(&telemetry));
    let id = builder.register(engine.compiled());
    let runtime = builder.start();

    for i in 0..24 {
        engine.observe(&sample(i), i % 3);
    }

    for round in 1..=3usize {
        println!("\n--- round {round}: serve 16 requests, take 4 SGD steps, publish ---");
        for i in 0..16 {
            let response = runtime
                .infer(id, &sample(round * 100 + i))
                .expect("serving is up");
            let _ = response.prediction;
        }
        for _ in 0..4 {
            engine.step().expect("replay buffer is fed");
        }
        let version = engine.publish(&runtime, id).expect("publish");
        println!("  published model version v{version}");
        print_breakdown(&telemetry.registry);
    }

    let stats = runtime.shutdown();
    let report = engine.report();

    // The telemetry mirror must agree with the authoritative ledgers to
    // the bit: same deltas, same order, same f64 rounding.
    let serve = PeTelemetry::register(&telemetry.registry, "serve");
    assert_eq!(
        serve.total_energy_pj().to_bits(),
        stats.total_energy.as_pj().to_bits(),
        "serve energy counters drifted from the RuntimeStats ledger"
    );
    let macs = telemetry
        .registry
        .counter_with(
            "pim_pe_macs_total",
            "MAC operations executed",
            &[("source", "serve")],
        )
        .value();
    assert_eq!(
        macs as u64, stats.macs,
        "MAC counter drifted from the ledger"
    );
    let learn = PeTelemetry::register(&telemetry.registry, "learn");
    assert_eq!(
        learn.energy_pj()[2].to_bits(),
        report.write_energy.as_pj().to_bits(),
        "learn write-energy counter drifted from the LearnReport ledger"
    );
    println!(
        "\nbit-exact: serve energy {:.3} pJ == RuntimeStats ledger; \
         learn write energy {:.3} pJ == LearnReport ledger",
        serve.total_energy_pj(),
        report.write_energy.as_pj()
    );
    println!("serve ledger : {stats}");
    println!("learn ledger : {report}");

    // The scheduler mirror telescopes: the per-batch deltas added to the
    // `pim_par_*_total` counters sum back to exactly the cumulative
    // snapshot the matching `pim_par_pool_*` gauge holds (delta-swap
    // mirroring is lossless, here and under concurrent workers alike).
    for (counter_name, gauge_name) in [
        ("pim_par_steals_total", "pim_par_pool_steals"),
        ("pim_par_parks_total", "pim_par_pool_parks"),
        ("pim_par_splits_total", "pim_par_pool_splits"),
    ] {
        let total = telemetry
            .registry
            .counter_with(counter_name, "scheduler activity", &[])
            .value();
        let snapshot = telemetry
            .registry
            .gauge_with(gauge_name, "scheduler activity", &[])
            .value();
        assert_eq!(
            total.to_bits(),
            snapshot.to_bits(),
            "{counter_name} drifted from {gauge_name}"
        );
        println!("scheduler mirror: {counter_name} == {gauge_name} == {total}");
    }

    println!("\n--- Prometheus exposition ---");
    print!("{}", telemetry.registry.render_prometheus());

    let dump = TraceDump::from_tracer(&telemetry.tracer);
    let out = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/telemetry_trace.jsonl");
    dump.save(&out).expect("writable target dir");
    println!(
        "\ntrace: {} spans recorded ({} dropped by the ring) -> {}",
        dump.len(),
        dump.dropped(),
        out.display()
    );
}
