//! End-to-end tests of the `pim-cluster` fleet: single-replica
//! equivalence with a bare runtime (logits, stats, telemetry), sharded
//! bit-exactness, coordinated canary rollouts, and request conservation
//! under concurrent load.

use pim_cluster::{Cluster, ClusterBuilder, ClusterError};
use pim_core::pe_inference::PeRepNet;
use pim_data::SyntheticSpec;
use pim_nn::models::{Backbone, BackboneConfig, RepNet, RepNetConfig};
use pim_nn::tensor::Tensor;
use pim_runtime::{CompiledModel, ModelId, Runtime, RuntimeError};
use proptest::prelude::*;
use std::sync::OnceLock;
use std::time::Duration;

fn tiny_model(seed: u64) -> RepNet {
    RepNet::new(
        Backbone::new(BackboneConfig::tiny()),
        RepNetConfig {
            rep_channels: 4,
            num_classes: 5,
            seed,
        },
    )
}

/// Deterministic single-sample inputs matching `BackboneConfig::tiny()`.
fn tiny_inputs(count: usize) -> Vec<Tensor> {
    let task = SyntheticSpec::cifar10_like()
        .with_geometry(8, 1)
        .with_samples(1, count.div_ceil(10))
        .generate()
        .expect("synthetic task");
    (0..count)
        .map(|i| task.test.inputs().batch_item(i))
        .collect()
}

#[test]
fn one_replica_cluster_is_bit_exact_with_a_bare_runtime() {
    let model = tiny_model(3);
    let inputs = tiny_inputs(12);

    // Bare runtime, instrumented.
    let bare_tel = pim_runtime::Telemetry::new();
    let mut builder = Runtime::builder()
        .workers(1)
        .queue_capacity(16)
        .max_batch(4)
        .max_wait(Duration::from_millis(1))
        .par_threads(1)
        .telemetry(bare_tel.clone());
    let bare_id = builder.register(CompiledModel::compile("tiny", &model).expect("compile"));
    let runtime = builder.start();

    // One-replica unsharded cluster with identical per-replica config.
    let cluster_tel = pim_runtime::Telemetry::new();
    let mut builder = ClusterBuilder::new()
        .replicas(1)
        .macro_groups(1)
        .workers(1)
        .queue_capacity(16)
        .max_batch(4)
        .max_wait(Duration::from_millis(1))
        .par_threads(1)
        .telemetry(cluster_tel.clone());
    let cluster_id = builder.register(CompiledModel::compile("tiny", &model).expect("compile"));
    let cluster = builder.start();

    // Sequential requests: each one rides alone, so batching — and with
    // it every simulated ledger — is deterministic on both sides.
    for (i, x) in inputs.iter().enumerate() {
        let bare = runtime.infer(bare_id, x).expect("bare response");
        let clustered = cluster.infer(cluster_id, x).expect("cluster response");
        assert_eq!(bare.logits, clustered.logits, "sample {i} logits diverged");
        assert_eq!(bare.prediction, clustered.prediction);
        assert_eq!(bare.batch_size, clustered.batch_size);
        assert_eq!(bare.latency, clustered.latency, "sample {i} sim latency");
        assert_eq!(bare.energy, clustered.energy, "sample {i} sim energy");
        assert_eq!(
            clustered.batch_size, 1,
            "sequential submits must not coalesce"
        );
    }

    let bare_stats = runtime.shutdown();
    let cluster_stats = cluster.shutdown();

    // Admission ledger: every request accepted, none rejected.
    assert_eq!(cluster_stats.submitted, inputs.len() as u64);
    assert_eq!(cluster_stats.accepted, inputs.len() as u64);
    assert_eq!(cluster_stats.rejected, 0);
    assert_eq!(cluster_stats.replicas, 1);

    // Every deterministic (simulated) stats field matches the bare
    // runtime bit-for-bit; wall-clock fields are excluded by nature.
    for stats in [&cluster_stats.per_replica[0], &cluster_stats.total] {
        assert_eq!(stats.requests_completed, bare_stats.requests_completed);
        assert_eq!(stats.requests_rejected, bare_stats.requests_rejected);
        assert_eq!(stats.batches, bare_stats.batches);
        assert_eq!(stats.mean_batch_size, bare_stats.mean_batch_size);
        assert_eq!(stats.max_batch_size, bare_stats.max_batch_size);
        assert_eq!(stats.p50_latency, bare_stats.p50_latency);
        assert_eq!(stats.p99_latency, bare_stats.p99_latency);
        assert_eq!(stats.mean_latency, bare_stats.mean_latency);
        assert_eq!(stats.total_energy, bare_stats.total_energy);
        assert_eq!(stats.simulated_busy, bare_stats.simulated_busy);
        assert_eq!(stats.edp, bare_stats.edp);
        assert_eq!(stats.macs, bare_stats.macs);
        assert_eq!(stats.pe_matvecs, bare_stats.pe_matvecs);
        assert_eq!(stats.latency_samples_ns, bare_stats.latency_samples_ns);
    }

    // Telemetry counters: the cluster's replica-0-labelled series carry
    // exactly what the bare runtime's unlabelled series carry.
    type Labels = &'static [(&'static str, &'static str)];
    let pairs: [(&str, Labels, Labels); 5] = [
        ("pim_runtime_requests_total", &[], &[("replica", "0")]),
        ("pim_runtime_rejected_total", &[], &[("replica", "0")]),
        (
            "pim_pe_matvecs_total",
            &[("source", "serve")],
            &[("source", "serve"), ("replica", "0")],
        ),
        (
            "pim_pe_macs_total",
            &[("source", "serve")],
            &[("source", "serve"), ("replica", "0")],
        ),
        (
            "pim_pe_busy_nanoseconds_total",
            &[("source", "serve")],
            &[("source", "serve"), ("replica", "0")],
        ),
    ];
    for (name, bare_labels, cluster_labels) in pairs {
        let bare_value = bare_tel
            .registry
            .counter_with(name, "", bare_labels)
            .value();
        let cluster_value = cluster_tel
            .registry
            .counter_with(name, "", cluster_labels)
            .value();
        assert_eq!(bare_value, cluster_value, "counter {name} diverged");
        assert!(bare_value >= 0.0);
    }
    assert!(
        bare_tel
            .registry
            .counter_with("pim_runtime_requests_total", "", &[])
            .value()
            > 0.0,
        "instrumentation should have counted the served requests"
    );
}

#[test]
fn sharded_cluster_reproduces_the_single_macro_answer() {
    let model = tiny_model(5);
    let inputs = tiny_inputs(10);

    // Sequential single-macro reference.
    let mut reference_model = model.clone();
    let mut reference = PeRepNet::compile(&mut reference_model).expect("compile");

    let mut builder = ClusterBuilder::new()
        .replicas(2)
        .macro_groups(3)
        .max_wait(Duration::from_millis(1));
    let id = builder.register(CompiledModel::compile("tiny", &model).expect("compile"));
    let cluster = builder.start();
    assert_eq!(cluster.macro_groups(), 3);
    for r in 0..cluster.replica_count() {
        assert_eq!(cluster.runtime(r).models()[0].macro_groups(), 3);
    }

    for (i, x) in inputs.iter().enumerate() {
        let (expected, _) = reference.predict(&mut reference_model, x);
        let response = cluster.infer(id, x).expect("cluster response");
        assert_eq!(
            response.logits,
            expected.as_slice(),
            "sample {i} diverged from the single-macro reference \
             (served by replica fleet sharded across 3 groups)"
        );
    }
    let stats = cluster.shutdown();
    assert_eq!(stats.total.requests_completed, inputs.len() as u64);
    assert_eq!(stats.macro_groups, 3);
}

#[test]
fn canary_rollout_replaces_every_replica_and_leaves_no_stale_version() {
    let v1 = tiny_model(3);
    let v2 = tiny_model(11);
    let inputs = tiny_inputs(6);

    let mut builder = ClusterBuilder::new()
        .replicas(3)
        .macro_groups(2)
        .max_wait(Duration::from_millis(1));
    let id = builder.register(CompiledModel::compile("v1", &v1).expect("compile"));
    let cluster = builder.start();
    assert_eq!(cluster.model_versions(id).expect("versions"), vec![0, 0, 0]);

    let replacement = CompiledModel::compile("v2", &v2).expect("compile");
    let expected: Vec<Vec<f32>> = inputs
        .iter()
        .map(|x| replacement.infer_reference(x).0.as_slice().to_vec())
        .collect();

    let report = cluster.swap_model(id, replacement).expect("rollout");
    assert_eq!(report.canary_replica, 0);
    assert_eq!(
        report.versions,
        vec![1, 1, 1],
        "a replica missed the rollout"
    );
    assert_eq!(cluster.model_versions(id).expect("versions"), vec![1, 1, 1]);

    // Every replica — not just the canary — now serves v2, bit-exactly.
    for r in 0..cluster.replica_count() {
        let runtime = cluster.runtime(r);
        assert_eq!(runtime.models()[0].name(), "v2", "replica {r} is stale");
        for (i, x) in inputs.iter().enumerate() {
            let response = runtime.infer(id, x).expect("post-rollout response");
            assert_eq!(
                response.logits, expected[i],
                "replica {r} sample {i} is not serving v2"
            );
        }
    }
    cluster.shutdown();
}

#[test]
fn incompatible_rollout_fails_atomically_without_touching_the_fleet() {
    let v1 = tiny_model(3);
    // Different classifier width: the serving slot must refuse it.
    let incompatible = RepNet::new(
        Backbone::new(BackboneConfig::tiny()),
        RepNetConfig {
            rep_channels: 4,
            num_classes: 7,
            seed: 13,
        },
    );

    let mut builder = ClusterBuilder::new()
        .replicas(2)
        .max_wait(Duration::from_millis(1));
    let id = builder.register(CompiledModel::compile("v1", &v1).expect("compile"));
    let cluster = builder.start();

    let replacement = CompiledModel::compile("v2-bad", &incompatible).expect("compile");
    let err = cluster
        .swap_model(id, replacement)
        .expect_err("must refuse");
    assert!(
        matches!(
            err,
            ClusterError::Runtime(RuntimeError::IncompatibleSwap { .. })
        ),
        "expected IncompatibleSwap, got {err:?}"
    );

    // The fleet is untouched: original version and name everywhere.
    assert_eq!(cluster.model_versions(id).expect("versions"), vec![0, 0]);
    for r in 0..cluster.replica_count() {
        assert_eq!(cluster.runtime(r).models()[0].name(), "v1");
    }
    cluster.shutdown();
}

#[test]
fn concurrent_load_conserves_every_submitted_request() {
    let model = tiny_model(9);
    let inputs = tiny_inputs(8);

    // Small queues + a long hold-open window: the first riders fill the
    // open batches, the queues fill behind them, and the rest of the
    // flood must be rejected — exercising both ledger branches.
    let mut builder = ClusterBuilder::new()
        .replicas(2)
        .workers(1)
        .queue_capacity(2)
        .max_batch(4)
        .max_wait(Duration::from_millis(300));
    let id = builder.register(CompiledModel::compile("tiny", &model).expect("compile"));
    let cluster = builder.start();

    const CLIENTS: usize = 8;
    const PER_CLIENT: usize = 12;
    let mut accepted_by_clients = 0u64;
    let mut rejected_by_clients = 0u64;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let cluster = &cluster;
                let inputs = &inputs;
                scope.spawn(move || {
                    let mut tickets = Vec::new();
                    let mut rejections = 0u64;
                    for r in 0..PER_CLIENT {
                        match cluster.submit(id, &inputs[(c + r) % inputs.len()]) {
                            Ok(t) => tickets.push(t),
                            Err(ClusterError::Saturated { .. })
                            | Err(ClusterError::NoHealthyReplica) => rejections += 1,
                            Err(e) => panic!("unexpected submit error: {e}"),
                        }
                    }
                    // Every accepted request must still get an answer.
                    let answered = tickets.len() as u64;
                    for t in tickets {
                        t.wait().expect("accepted ticket answered");
                    }
                    (answered, rejections)
                })
            })
            .collect();
        for h in handles {
            let (answered, rejections) = h.join().expect("client");
            accepted_by_clients += answered;
            rejected_by_clients += rejections;
        }
    });

    let stats = cluster.shutdown();
    let total = (CLIENTS * PER_CLIENT) as u64;
    assert_eq!(stats.submitted, total, "every validated submit is counted");
    assert_eq!(
        stats.accepted + stats.rejected,
        stats.submitted,
        "conservation: accepted + rejected == submitted"
    );
    assert_eq!(stats.accepted, accepted_by_clients);
    assert_eq!(stats.rejected, rejected_by_clients);
    assert_eq!(
        stats.total.requests_completed, stats.accepted,
        "every accepted request was answered"
    );
    assert!(
        stats.rejected > 0,
        "the flood should have saturated the queues"
    );
    assert!(stats.accepted > 0, "some requests must have landed");
}

/// Shared fleet for the property test: starting a cluster per case would
/// dominate the run, and the conservation invariant is cumulative anyway.
fn conservation_fixture() -> &'static (Cluster, ModelId, Vec<Tensor>) {
    static FIXTURE: OnceLock<(Cluster, ModelId, Vec<Tensor>)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let model = tiny_model(17);
        let mut builder = ClusterBuilder::new()
            .replicas(2)
            .queue_capacity(4)
            .max_batch(2)
            .max_wait(Duration::from_micros(200));
        let id = builder.register(CompiledModel::compile("tiny", &model).expect("compile"));
        (builder.start(), id, tiny_inputs(4))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random mixes of valid and malformed submissions: the admission
    /// ledger must conserve every validated request and never count a
    /// request that failed validation.
    #[test]
    fn admission_ledger_conserves_requests(valid in 1usize..10, malformed in 0usize..4) {
        let (cluster, id, inputs) = conservation_fixture();
        let mut tickets = Vec::new();
        for i in 0..valid {
            match cluster.submit(*id, &inputs[i % inputs.len()]) {
                Ok(t) => tickets.push(t),
                Err(ClusterError::Saturated { .. }) | Err(ClusterError::NoHealthyReplica) => {}
                Err(e) => panic!("unexpected submit error: {e}"),
            }
        }
        let bad_shape = Tensor::zeros(&[2, 2]);
        for _ in 0..malformed {
            let err = cluster.submit(*id, &bad_shape).expect_err("malformed must fail");
            prop_assert!(matches!(err, ClusterError::Runtime(RuntimeError::BadInput { .. })));
        }
        let unknown = cluster.submit(ModelId::from_index(99), &inputs[0]).expect_err("unknown id");
        prop_assert!(matches!(unknown, ClusterError::Runtime(RuntimeError::UnknownModel { .. })));
        for t in tickets {
            t.wait().expect("accepted ticket answered");
        }

        let stats = cluster.stats();
        prop_assert_eq!(
            stats.accepted + stats.rejected,
            stats.submitted,
            "conservation violated: accepted {} + rejected {} != submitted {}",
            stats.accepted, stats.rejected, stats.submitted
        );
        // Malformed and unknown-model requests never entered the ledger:
        // everything submitted so far was a valid request from some case.
        prop_assert!(stats.submitted >= valid as u64);
    }
}
