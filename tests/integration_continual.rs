//! End-to-end continual learning: online training, differential SRAM
//! write-back under the hybrid write policy, and hot model swap into the
//! live serving runtime.
//!
//! Covers the subsystem's two acceptance invariants:
//!
//! (a) after N online steps and a publish, the *served* output is
//!     bit-exact with a cold `PeRepNet::compile` of the learner's current
//!     weights — the differential write-back and zero-recompile swap path
//!     introduces no drift;
//! (b) the MRAM backbone write counter stays zero while the SRAM
//!     endurance meter is nonzero and within budget — the hybrid memory
//!     contract holds under real operation.

use pim_core::pe_inference::PeRepNet;
use pim_data::SyntheticSpec;
use pim_learn::{LearnEngine, OnlineLearnerConfig, WritePolicy};
use pim_nn::models::{Backbone, BackboneConfig, RepNet, RepNetConfig};
use pim_runtime::Runtime;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;
use std::time::Duration;

const NUM_CLASSES: usize = 5;

fn tiny_model(seed: u64) -> RepNet {
    RepNet::new(
        Backbone::new(BackboneConfig::tiny()),
        RepNetConfig {
            rep_channels: 4,
            num_classes: NUM_CLASSES,
            seed,
        },
    )
}

fn engine(seed: u64) -> LearnEngine {
    LearnEngine::new(
        "live",
        tiny_model(seed),
        OnlineLearnerConfig {
            replay_capacity: 64,
            batch_size: 4,
            seed: 100 + seed,
            ..OnlineLearnerConfig::default()
        },
        WritePolicy::hybrid_dac24(1 << 22),
    )
    .expect("tiny model fits the PEs")
}

fn stream_task() -> pim_data::Task {
    SyntheticSpec::cifar10_like()
        .with_geometry(8, 1)
        .with_samples(4, 2)
        .generate()
        .expect("synthetic task")
}

#[test]
fn online_steps_then_hot_swap_serve_bit_exact_within_budget() {
    let mut engine = engine(9);
    let task = stream_task();
    // Labels above NUM_CLASSES-1 exist in the 10-class task; fold them.
    for i in 0..task.train.len() {
        let (x, labels) = task.train.batch(&[i]);
        engine.observe(&x, labels[0] % NUM_CLASSES);
    }

    let mut builder = Runtime::builder().workers(2).max_wait(Duration::ZERO);
    let id = builder.register(engine.compiled());
    let runtime = builder.start();

    // Three train→publish rounds of online continual learning.
    let mut slot_version = 0;
    for _ in 0..3 {
        for _ in 0..4 {
            engine.step().expect("online step");
        }
        slot_version = engine.publish(&runtime, id).expect("publish");
    }
    assert_eq!(slot_version, 3);
    assert_eq!(engine.version(), 3);

    // (a) Serving is bit-exact with a cold recompile of the learner's
    // current weights, for every test sample.
    let mut cold_model = engine.learner().model().clone();
    let mut cold_branch = PeRepNet::compile(&mut cold_model).expect("cold recompile");
    for i in 0..task.test.len() {
        let (x, _) = task.test.batch(&[i]);
        let served = runtime.infer(id, &x).expect("serve");
        let (cold_logits, _) = cold_branch.predict(&mut cold_model, &x);
        assert_eq!(
            served.logits,
            cold_logits.as_slice().to_vec(),
            "sample {i}: served logits differ from cold recompile"
        );
    }

    // (b) The hybrid contract held: backbone untouched, adaptor metered
    // and within budget.
    let report = engine.report();
    assert_eq!(report.mram_write_bits, 0, "MRAM backbone was written");
    assert!(report.sram_write_bits > 0, "SRAM meter never moved");
    assert!(report.within_budget());
    assert_eq!(report.publishes, 3);

    let stats = runtime.shutdown();
    assert_eq!(stats.model_swaps, 3);
    assert_eq!(stats.requests_completed, task.test.len() as u64);
}

#[test]
fn hot_swaps_under_concurrent_traffic_answer_every_request() {
    let mut engine = engine(4);
    let task = stream_task();
    for i in 0..task.train.len() {
        let (x, labels) = task.train.batch(&[i]);
        engine.observe(&x, labels[0] % NUM_CLASSES);
    }

    let mut builder = Runtime::builder().workers(2).queue_capacity(512);
    let id = builder.register(engine.compiled());
    let runtime = builder.start();

    let answered = AtomicUsize::new(0);
    let requests_per_client = 25;
    thread::scope(|scope| {
        for c in 0..3 {
            let runtime = &runtime;
            let answered = &answered;
            let input = {
                let (x, _) = task.test.batch(&[c % task.test.len()]);
                x
            };
            scope.spawn(move || {
                for _ in 0..requests_per_client {
                    let response = runtime.infer(id, &input).expect("serve under swaps");
                    assert!(response.prediction < NUM_CLASSES);
                    answered.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        // Publish new model versions while the clients hammer the queue.
        for _ in 0..4 {
            engine.step().expect("online step");
            engine.publish(&runtime, id).expect("publish under load");
        }
    });
    assert_eq!(answered.load(Ordering::Relaxed), 3 * requests_per_client);

    let stats = runtime.shutdown();
    assert_eq!(stats.model_swaps, 4);
    assert_eq!(stats.requests_completed, 3 * requests_per_client as u64);
}

#[test]
fn checkpoint_restores_and_write_back_republishes_the_restored_weights() {
    let mut engine = engine(2);
    let task = stream_task();
    for i in 0..task.train.len() {
        let (x, labels) = task.train.batch(&[i]);
        engine.observe(&x, labels[0] % NUM_CLASSES);
    }
    for _ in 0..3 {
        engine.step().expect("step");
    }
    engine.write_back().expect("write back");

    // Snapshot the learner state, then keep training past it.
    let mut saved = Vec::new();
    engine
        .learner_mut()
        .save_checkpoint(&mut saved)
        .expect("save");
    let reference = {
        let mut model = engine.learner().model().clone();
        let mut branch = PeRepNet::compile(&mut model).expect("reference compile");
        let (x, _) = task.test.batch(&[0]);
        let (logits, _) = branch.predict(&mut model, &x);
        logits.as_slice().to_vec()
    };
    for _ in 0..3 {
        engine.step().expect("step");
    }
    engine.write_back().expect("write back");

    // Restore and write back: the resident tiles must converge to the
    // checkpointed weights, bit-exactly.
    engine
        .learner_mut()
        .load_checkpoint(saved.as_slice())
        .expect("load");
    engine.write_back().expect("write back restored weights");
    let restored = engine.compiled();
    let mut cold_model = engine.learner().model().clone();
    let mut cold_branch = PeRepNet::compile(&mut cold_model).expect("cold recompile");
    let (x, _) = task.test.batch(&[0]);
    let (cold_logits, _) = cold_branch.predict(&mut cold_model, &x);
    assert_eq!(cold_logits.as_slice().to_vec(), reference);
    assert_eq!(restored.name(), "live@v3");
}
