//! Integration tests for the `pim-dse` design-space exploration stack.
//!
//! The load-bearing contracts:
//!
//! 1. The analytic tile cost models the sweep evaluator prunes on are
//!    **bit-exact** against the real `pim-pe` cycle-simulator ledgers —
//!    not merely close — across sampled configurations and patterns
//!    (proptests). The PEs accumulate stats with field-wise `+=`, so the
//!    pinned form is `baseline + analytic_cost == after`, which is the
//!    exact f64 operation the simulator performs.
//! 2. Pareto pruning never drops a non-dominated point (proptest).
//! 3. An end-to-end sweep produces a non-empty mixed-tier frontier whose
//!    `TUNED.json` round-trips exactly and whose runtime defaults leave
//!    served logits bit-identical.

use pim_arch::pe_model::{MramTileModel, SramTileModel};
use pim_arch::ArchConfig;
use pim_dse::{
    dominates, pareto_frontier, run_sweep, AnalyticCost, DesignPoint, SweepOptions, SweepSpace,
    Tier, TunedDoc, Workload,
};
use pim_nn::models::{Backbone, BackboneConfig, RepNet, RepNetConfig};
use pim_nn::tensor::Tensor;
use pim_pe::{MramSparsePe, SparsePe, SramSparsePe};
use pim_runtime::{CompiledModel, Runtime};
use pim_sparse::prune::prune_magnitude;
use pim_sparse::{CscMatrix, Matrix, NmPattern};
use pim_telemetry::TelemetryRegistry;
use proptest::prelude::*;

/// Deterministic dense tile → N:M pruned CSC (seeded by position).
fn sparse_tile(rows: usize, cols: usize, pattern: NmPattern, seed: usize) -> CscMatrix {
    let dense = Matrix::from_fn(rows, cols, |r, c| {
        (((r * 31 + c * 17 + seed) % 251) as i32 - 125) as i8
    });
    let mask = prune_magnitude(&dense, pattern).expect("non-empty tile");
    CscMatrix::compress(&dense, &mask).expect("shapes match")
}

/// Sampled sweep-space corners: the knobs `SweepSpace::dac24_neighborhood`
/// actually varies.
fn arb_config() -> impl Strategy<Value = ArchConfig> {
    let patterns = prop_oneof![
        Just(NmPattern::one_of_four()),
        Just(NmPattern::one_of_eight()),
        Just(NmPattern::new(2, 4).expect("2:4")),
    ];
    let tiles = prop_oneof![Just((128usize, 8usize)), Just((128, 4)), Just((64, 8))];
    let bits = prop_oneof![Just(8u32), Just(4)];
    (patterns, tiles, bits).prop_map(|(p, (rows, groups), w)| {
        ArchConfig::dac24()
            .with_pattern(p)
            .with_sram_tile(rows, groups)
            .with_weight_bits(w)
            .validated()
            .expect("sampled corner is valid")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The SRAM analytic matvec cost is the exact ledger delta of the
    /// cycle simulator: cycles, busy time, and every energy channel.
    #[test]
    fn sram_analytic_cost_is_bit_exact_against_the_pe_ledger(
        cfg in arb_config(),
        row_groups in 2usize..6,
        cols in 1usize..4,
        seed in 0usize..64,
    ) {
        let pattern = cfg.pattern;
        let rows = row_groups * pattern.m();
        let csc = sparse_tile(rows, cols, pattern, seed);
        let mut pe = SramSparsePe::with_config(cfg.sram.clone());
        pe.load(&csc).expect("sampled tile fits the sampled PE");

        let baseline = *pe.stats();
        let x: Vec<i8> = (0..rows).map(|i| ((i * 37 + seed) % 256) as u8 as i8).collect();
        let report = pe.matvec(&x).expect("loaded");
        let after = *pe.stats();

        let model = SramTileModel::new(cfg.sram.clone());
        let cost = model.matvec_cost(pattern.m(), rows);

        // The per-op report itself matches the model, field for field.
        prop_assert_eq!(cost.cycles, report.cycles);
        prop_assert_eq!(cost.latency, report.latency);
        prop_assert_eq!(cost.energy, report.energy);
        // And the cumulative ledger advanced by exactly the analytic cost,
        // in the simulator's own `+=` operation order.
        prop_assert_eq!(after.cycles - baseline.cycles, cost.cycles);
        prop_assert_eq!(baseline.busy_time + cost.latency, after.busy_time);
        prop_assert_eq!(baseline.energy + cost.energy, after.energy);
    }

    /// Same pin for the MRAM PE: `rows_used` and total stored pairs are
    /// derived from the CSC layout exactly as `load` packs it.
    #[test]
    fn mram_analytic_cost_is_bit_exact_against_the_pe_ledger(
        cfg in arb_config(),
        row_groups in 2usize..8,
        cols in 1usize..4,
        seed in 0usize..64,
    ) {
        let pattern = cfg.pattern;
        let rows = row_groups * pattern.m();
        let csc = sparse_tile(rows, cols, pattern, seed);
        let mut pe = MramSparsePe::with_config(cfg.mram.clone());
        pe.load(&csc).expect("sampled tile fits the sampled PE");

        let baseline = *pe.stats();
        let x: Vec<i8> = (0..rows).map(|i| ((i * 41 + seed) % 256) as u8 as i8).collect();
        let report = pe.matvec(&x).expect("loaded");
        let after = *pe.stats();

        // One packed row never mixes logical columns, so each column
        // occupies ceil(slots / pairs_per_row) rows and contributes all
        // of its slots (occupied or not) to the sensed bits.
        let rows_used =
            (csc.slots_per_col().div_ceil(cfg.mram.pairs_per_row) * csc.cols()) as u64;
        let pairs = (csc.slots_per_col() * csc.cols()) as u64;
        let model = MramTileModel::new(cfg.mram.clone());
        let cost = model.matvec_cost(rows_used, pairs);

        prop_assert_eq!(cost.cycles, report.cycles);
        prop_assert_eq!(cost.latency, report.latency);
        prop_assert_eq!(cost.energy, report.energy);
        prop_assert_eq!(after.cycles - baseline.cycles, cost.cycles);
        prop_assert_eq!(baseline.busy_time + cost.latency, after.busy_time);
        prop_assert_eq!(baseline.energy + cost.energy, after.energy);
    }
}

fn point(lat: f64, energy: f64, area: f64) -> DesignPoint {
    DesignPoint::analytic(
        ArchConfig::dac24(),
        AnalyticCost {
            latency_ns: lat,
            energy_pj: energy,
            area_mm2: area,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Frontier extraction is lossless for non-dominated points: every
    /// input either survives or is dominated by a survivor, and no two
    /// survivors dominate each other.
    #[test]
    fn pareto_pruning_never_drops_a_non_dominated_point(
        objectives in proptest::collection::vec((1u32..40, 1u32..40, 1u32..40), 1..24),
    ) {
        let points: Vec<DesignPoint> = objectives
            .iter()
            .map(|&(l, e, a)| point(l as f64, e as f64, a as f64))
            .collect();
        let frontier = pareto_frontier(&points);
        prop_assert!(!frontier.is_empty());

        for p in &points {
            let survives = frontier.iter().any(|f| f.objectives() == p.objectives());
            let dominated = frontier.iter().any(|f| dominates(f, p));
            prop_assert!(
                survives || dominated,
                "point {:?} neither survived nor is dominated",
                p.objectives()
            );
            // A dominated point must not survive.
            prop_assert!(!(survives && points.iter().any(|o| dominates(o, p))));
        }
        for f in &frontier {
            prop_assert!(!frontier.iter().any(|other| dominates(other, f)));
        }
    }
}

#[test]
fn end_to_end_sweep_tunes_the_runtime_bit_exactly() {
    // A trimmed neighborhood keeps this test fast while still exercising
    // both promotion tiers (the parallelism twins both reach the
    // frontier; only one is promoted).
    let mut space = SweepSpace::dac24_neighborhood();
    space.sram_tiles.truncate(1);
    space.weight_bits.truncate(1);
    let workload = Workload::resnet50_repnet();
    let registry = TelemetryRegistry::new();
    let outcome = run_sweep(
        &space,
        &workload,
        &SweepOptions {
            measure_top: 1,
            iters: 2,
        },
        &registry,
    )
    .expect("sweep succeeds");

    // Non-empty frontier with both tiers distinguished.
    assert!(!outcome.frontier.is_empty());
    assert_eq!(outcome.frontier[0].tier, Tier::Measured);
    assert!(outcome.frontier.iter().any(|p| p.tier == Tier::Analytic));
    assert!(outcome.frontier[0].measured_ns.unwrap() > 0.0);
    // The frontier is ascending in EDP and free of dominated points.
    for pair in outcome.frontier.windows(2) {
        assert!(pair[0].edp() <= pair[1].edp());
    }
    for p in &outcome.frontier {
        assert!(!outcome.frontier.iter().any(|other| dominates(other, p)));
    }

    // TUNED.json round-trips with the winning config intact.
    let text = outcome.doc.render();
    let parsed = TunedDoc::parse(&text).expect("own render parses");
    assert_eq!(parsed.best.config, outcome.doc.best.config);
    assert_eq!(parsed.frontier.len(), outcome.frontier.len());

    // The tuned serving knobs change scheduling, never arithmetic.
    let model = RepNet::new(
        Backbone::new(BackboneConfig::tiny()),
        RepNetConfig {
            rep_channels: 4,
            num_classes: 10,
            seed: 3,
        },
    );
    let shape: Vec<usize> = CompiledModel::compile("tiny", &model)
        .expect("compile")
        .input_shape()
        .to_vec();
    let input = Tensor::from_fn(&shape, |i| ((i * 7 + 3) % 19) as f32 / 18.0);
    let serve = |tuned: bool| {
        let compiled = CompiledModel::compile("tiny", &model).expect("compile");
        let mut builder = Runtime::builder();
        if tuned {
            builder = builder.tuned(parsed.runtime_defaults());
        }
        let id = builder.register(compiled);
        let runtime = builder.start();
        let logits = runtime.infer(id, &input).expect("infer").logits;
        runtime.shutdown();
        logits
    };
    assert_eq!(serve(false), serve(true));
}
