//! Smoke + shape tests for every experiment driver (the benches print the
//! full artifacts; these tests pin the structure and orderings).

use pim_core::experiments::ablation::{
    csc_vs_csr, index_width_sweep, transpose_pool_sweep, write_fault_sweep,
};
use pim_core::experiments::{run_fig7, run_fig8, run_table1, run_table2, Table1Config};
use pim_sparse::NmPattern;

#[test]
fn table2_reprints_the_paper_constants() {
    let t = run_table2();
    let s = t.to_string();
    // Spot-check the published values appear verbatim.
    assert!(s.contains("0.04400"), "adder tree area\n{s}");
    assert!(s.contains("16.300"), "adder tree power\n{s}");
    assert!(s.contains("4408"), "P resistance\n{s}");
    assert!((t.sram_total_area_mm2() - 0.26839).abs() < 1e-9);
}

#[test]
fn fig7_series_is_ordered_like_the_paper() {
    let fig = run_fig7().expect("profile maps");
    let areas: Vec<f64> = fig.points.iter().map(|p| p.area_norm).collect();
    // SRAM = 1.0 ≥ MRAM ≥ hybrid 1:4 ≥ hybrid 1:8.
    assert!(areas[0] >= areas[1]);
    assert!(areas[1] >= areas[2]);
    assert!(areas[2] >= areas[3]);
    // Power: the SRAM baseline dominates everything else.
    let p: Vec<f64> = fig.points.iter().map(|x| x.total_power_norm()).collect();
    assert!(p[1] < p[0] && p[2] < p[0] && p[3] < p[0], "{p:?}");
}

#[test]
fn fig8_series_is_ordered_like_the_paper() {
    let fig = run_fig8().expect("profile maps");
    let finetune_sram = fig.bar("SRAM[29] finetune-all").expect("bar");
    let finetune_mram = fig.bar("MRAM[30] finetune-all").expect("bar");
    let ours_14 = fig.bar("1:4").expect("bar");
    let ours_18 = fig.bar("1:8").expect("bar");
    assert!(finetune_mram > finetune_sram);
    assert!(ours_14 < finetune_sram && ours_18 < finetune_sram);
    assert!((ours_18 - 1.0).abs() < 1e-9, "normalization point");
}

#[test]
fn quick_table1_produces_the_five_rows() {
    let table = run_table1(&Table1Config::quick());
    assert_eq!(table.rows.len(), 5);
    assert_eq!(table.datasets.len(), 5);
    // Dense backbone should not be worse than heavily pruned backbone.
    let dense = table.row("Dense").expect("row").backbone_accuracy;
    let pruned = table.row("(1:8) FP32").expect("row").backbone_accuracy;
    assert!(
        dense + 1e-9 >= pruned - 0.05,
        "dense {dense} pruned {pruned}"
    );
}

#[test]
fn ablation_csc_wins_storage_at_every_pattern() {
    for pattern in [
        NmPattern::one_of_four(),
        NmPattern::one_of_eight(),
        NmPattern::two_of_four(),
    ] {
        let cmp = csc_vs_csr(256, 64, pattern);
        assert!(cmp.csc_bits < cmp.csr_bits, "{cmp}");
        assert!(cmp.csc_bits < cmp.dense_bits, "{cmp}");
    }
}

#[test]
fn ablation_index_sweep_shows_throughput_rising_with_sparsity() {
    let sweep = index_width_sweep();
    let one_four = sweep
        .iter()
        .find(|p| p.pattern.to_string() == "1:4")
        .expect("1:4");
    let one_sixteen = sweep
        .iter()
        .find(|p| p.pattern.to_string() == "1:16")
        .expect("1:16");
    assert!(one_sixteen.effective_macs_per_cycle > one_four.effective_macs_per_cycle);
    assert!(one_sixteen.storage_ratio < one_four.storage_ratio);
}

#[test]
fn ablation_transpose_pool_has_diminishing_returns() {
    let sweep = transpose_pool_sweep(&[1, 2, 4, 8, 16]);
    let first_gain = sweep[0].step_latency_ns / sweep[1].step_latency_ns;
    let last_gain = sweep[3].step_latency_ns / sweep[4].step_latency_ns;
    assert!(first_gain >= last_gain - 1e-9, "{sweep:?}");
}

#[test]
fn fig7_golden_values_are_stable() {
    // Regression pins (10% relative tolerance): these are the numbers
    // EXPERIMENTS.md reports; model changes that move them should be
    // deliberate.
    let fig = run_fig7().expect("profile maps");
    let close = |got: f64, expect: f64| (got / expect - 1.0).abs() < 0.10;
    assert!(close(fig.point("MRAM").unwrap().area_norm, 0.134), "{fig}");
    assert!(close(fig.point("1:4").unwrap().area_norm, 0.070), "{fig}");
    assert!(close(fig.point("1:8").unwrap().area_norm, 0.049), "{fig}");
    assert!(
        close(fig.point("SRAM").unwrap().leakage_power_norm, 0.915),
        "{fig}"
    );
}

#[test]
fn fig8_golden_values_are_stable() {
    let fig = run_fig8().expect("profile maps");
    let close = |got: f64, expect: f64| (got / expect - 1.0).abs() < 0.10;
    assert!(
        close(fig.bar("SRAM[29] finetune-all").unwrap(), 10.37),
        "{fig}"
    );
    assert!(
        close(fig.bar("MRAM[30] finetune-all").unwrap(), 96.84),
        "{fig}"
    );
    assert!(close(fig.bar("SRAM[29] RepNet").unwrap(), 1.375), "{fig}");
    assert!(close(fig.bar("MRAM[30] RepNet").unwrap(), 12.83), "{fig}");
    assert!(close(fig.bar("1:4").unwrap(), 0.608), "{fig}");
}

#[test]
fn write_fault_sweep_is_deterministic() {
    let a = write_fault_sweep(&[1e-3], &[1]);
    let b = write_fault_sweep(&[1e-3], &[1]);
    assert_eq!(a, b);
}

#[test]
fn scheduler_wave_model_matches_mapper_ceiling_arithmetic() {
    // The mapper's analytic per-layer latency uses ceil(rows/P)+3 per
    // matvec; the SIMT scheduler's wave decomposition of the same uniform
    // tile set must agree exactly.
    use pim_arch::scheduler::{Schedule, TileOp};
    for (total_rows, pes) in [(4096u64, 8usize), (1000, 16), (128, 128)] {
        let rows_per_pe = total_rows.div_ceil(pes as u64);
        let analytic = rows_per_pe + 3;
        // One op per PE-sized row chunk, each costing its row count + fill.
        let ops: Vec<TileOp> = (0..pes)
            .map(|i| {
                let start = i as u64 * rows_per_pe;
                let rows = rows_per_pe.min(total_rows.saturating_sub(start));
                TileOp::new(rows.max(1) + 3)
            })
            .collect();
        let schedule = Schedule::build(&ops, pes);
        assert_eq!(schedule.makespan_cycles(), analytic, "{total_rows}/{pes}");
    }
}
