//! Integration: the adaptive governor's determinism contract.
//!
//! * The decision trace is a pure function of the pressure schedule —
//!   an exact demote/promote/shed event sequence is pinned here.
//! * Post-recovery serving is bit-exact with a never-degraded fleet for
//!   every tenant (promotion swaps the same full artifact back in).
//! * The per-tenant admission ledger conserves under arbitrary
//!   interleavings of submissions and ladder movement (proptest).

use pim_cluster::ClusterBuilder;
use pim_governor::{
    Governor, GovernorConfig, GovernorError, GovernorEvent, LadderConfig, PressureSample, Priority,
    TenantId, TenantSlo, TenantSpec, Tier,
};
use pim_nn::models::{Backbone, BackboneConfig, RepNet, RepNetConfig};
use pim_nn::tensor::Tensor;
use pim_runtime::CompiledModel;
use pim_sparse::NmPattern;
use proptest::prelude::*;
use std::sync::OnceLock;
use std::time::Duration;

const NUM_CLASSES: usize = 5;

/// One tenant's branch pair: the 1:4 full artifact and its 1:8 sibling,
/// both from the same seeded weights.
fn branch_pair(name: &str, seed: u64) -> (CompiledModel, CompiledModel) {
    let mut model = RepNet::new(
        Backbone::new(BackboneConfig::tiny()),
        RepNetConfig {
            rep_channels: 4,
            num_classes: NUM_CLASSES,
            seed,
        },
    );
    model.apply_pattern(NmPattern::one_of_four());
    let full = CompiledModel::compile(format!("{name}-full"), &model).expect("compile full");
    model.apply_pattern(NmPattern::one_of_eight());
    let degraded =
        CompiledModel::compile(format!("{name}-degraded"), &model).expect("compile degraded");
    (full, degraded)
}

/// Compiled once, cloned into every test's governor.
fn pairs() -> &'static [(CompiledModel, CompiledModel); 3] {
    static PAIRS: OnceLock<[(CompiledModel, CompiledModel); 3]> = OnceLock::new();
    PAIRS.get_or_init(|| {
        [
            branch_pair("interactive", 101),
            branch_pair("batch", 202),
            branch_pair("best-effort", 303),
        ]
    })
}

/// High, Normal, Low — in that registration order. Returns the governor
/// plus the three tenant handles in the same order.
fn governor(queue_capacity: usize) -> (Governor, Vec<TenantId>) {
    let priorities = [Priority::High, Priority::Normal, Priority::Low];
    let mut builder = Governor::builder().config(GovernorConfig {
        ladder: LadderConfig {
            high_watermark: 0.75,
            low_watermark: 0.25,
            demote_after: 2,
            promote_after: 2,
            dwell_ticks: 1,
        },
        ..GovernorConfig::default()
    });
    let ids: Vec<TenantId> = pairs()
        .iter()
        .zip(priorities)
        .map(|((full, degraded), priority)| {
            builder.tenant(TenantSpec {
                name: format!("{priority}"),
                priority,
                slo: TenantSlo::default(),
                full: full.clone(),
                degraded: degraded.clone(),
            })
        })
        .collect();
    let g = builder
        .start(
            ClusterBuilder::new()
                .replicas(1)
                .workers(1)
                .queue_capacity(queue_capacity)
                .max_wait(Duration::ZERO),
        )
        .expect("compatible pairs");
    (g, ids)
}

fn probe(full: &CompiledModel) -> Tensor {
    let mut shape = vec![1];
    shape.extend_from_slice(full.input_shape());
    Tensor::ones(&shape)
}

/// Drives `governor` with a pressure-score schedule, returning the
/// events it emitted.
fn drive(governor: &Governor, schedule: &[f64]) -> Vec<GovernorEvent> {
    schedule
        .iter()
        .filter_map(|&p| governor.tick_with(PressureSample::from_score(p)))
        .collect()
}

#[test]
fn seeded_pressure_schedule_pins_the_exact_decision_trace() {
    // 8 hot ticks walk the full descent one rung at a time; 8 calm
    // ticks unwind it in exact reverse order.
    let schedule: Vec<f64> = std::iter::repeat_n(1.0, 8)
        .chain(std::iter::repeat_n(0.0, 8))
        .collect();
    let expected = vec![
        GovernorEvent::Demoted { tick: 2, tenant: 2 }, // Low first
        GovernorEvent::Demoted { tick: 4, tenant: 1 }, // then Normal
        GovernorEvent::BatchWidened { tick: 6 },
        GovernorEvent::ShedStarted { tick: 8, tenant: 2 },
        GovernorEvent::ShedStopped {
            tick: 10,
            tenant: 2,
        },
        GovernorEvent::BatchRestored { tick: 12 },
        GovernorEvent::Promoted {
            tick: 14,
            tenant: 1,
        },
        GovernorEvent::Promoted {
            tick: 16,
            tenant: 2,
        },
    ];
    let (g1, _) = governor(16);
    let trace1 = drive(&g1, &schedule);
    assert_eq!(trace1, expected, "the trace is pinned");
    let report = g1.report();
    assert_eq!(report.events, expected);
    assert_eq!(report.ladder_depth, 0, "fully unwound");
    assert_eq!(report.ticks, 16);
    assert_eq!(report.tenants[1].demotions, 1);
    assert_eq!(report.tenants[1].promotions, 1);
    assert_eq!(report.tenants[0].demotions, 0, "High is never demoted");

    // Same schedule, fresh governor: identical trace (determinism).
    let (g2, _) = governor(16);
    assert_eq!(drive(&g2, &schedule), trace1);
}

#[test]
fn mid_band_pressure_holds_the_ladder_still() {
    let (g, _) = governor(16);
    // Two hot ticks demote once; then mid-band pressure (between the
    // watermarks) must neither demote further nor recover.
    drive(&g, &[1.0, 1.0]);
    assert_eq!(g.report().ladder_depth, 1);
    let moved = drive(&g, &[0.5; 12]);
    assert!(moved.is_empty(), "hysteresis band holds the status quo");
    assert_eq!(g.report().ladder_depth, 1);
}

#[test]
fn degraded_then_recovered_serving_is_bit_exact_per_tier() {
    let (g, ids) = governor(16);
    let (hi, lo) = (ids[0], ids[2]);
    let (hi_full, _) = &pairs()[0];
    let (lo_full, lo_degraded) = &pairs()[2];

    // Descend far enough to demote the Low tenant (2 hot ticks).
    drive(&g, &[1.0, 1.0]);
    assert_eq!(g.tier(lo).expect("known"), Tier::Degraded);
    assert_eq!(g.tier(hi).expect("known"), Tier::Full);

    // While degraded, the Low tenant serves its degraded branch
    // bit-exactly; the High tenant is untouched.
    let lo_probe = probe(lo_full);
    let served = g.infer(lo, &lo_probe).expect("served");
    let (expect_degraded, _) = lo_degraded.infer_reference(&lo_probe);
    assert_eq!(served.logits, expect_degraded.as_slice().to_vec());

    let hi_probe = probe(hi_full);
    let hi_served = g.infer(hi, &hi_probe).expect("served");
    let (expect_hi, _) = hi_full.infer_reference(&hi_probe);
    assert_eq!(hi_served.logits, expect_hi.as_slice().to_vec());

    // Recover fully; post-recovery serving is bit-exact with a fleet
    // that never degraded (it's the same full artifact again).
    drive(&g, &[0.0; 4]);
    assert_eq!(g.tier(lo).expect("known"), Tier::Full);
    let recovered = g.infer(lo, &lo_probe).expect("served");
    let (expect_full, _) = lo_full.infer_reference(&lo_probe);
    assert_eq!(recovered.logits, expect_full.as_slice().to_vec());
    assert_eq!(
        g.infer(hi, &hi_probe).expect("served").logits,
        expect_hi.as_slice().to_vec(),
        "high-priority serving identical before, during, and after"
    );
}

#[test]
fn shed_tenant_is_refused_at_admission_and_readmitted() {
    let (g, ids) = governor(16);
    let lo = ids[2];
    let (lo_full, _) = &pairs()[2];
    let input = probe(lo_full);
    // Full descent: demote x2, widen, shed Low.
    drive(&g, &[1.0; 8]);
    assert_eq!(g.tier(lo).expect("known"), Tier::Shed);
    assert!(matches!(
        g.submit(lo, &input),
        Err(GovernorError::Shed { .. })
    ));
    // Validation failures are not counted against the ledger.
    assert!(matches!(
        g.submit(lo, &Tensor::ones(&[2, 8, 8])),
        Err(GovernorError::BadInput { .. })
    ));
    // Recovery re-admits.
    drive(&g, &[0.0; 4]);
    assert_eq!(g.tier(lo).expect("known"), Tier::Degraded);
    g.infer(lo, &input).expect("re-admitted");
    let report = g.report();
    assert_eq!(report.tenants[2].shed, 1);
    assert!(report.conserves());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Under arbitrary interleavings of per-tenant submissions and
    /// ladder movement, every tenant's ledger conserves:
    /// `accepted + shed + rejected == submitted`, and the counts match
    /// what the caller observed.
    #[test]
    fn admission_ledger_conserves_per_tenant(
        ops in proptest::collection::vec((0usize..4, 0.0f64..1.2), 30..120)
    ) {
        // Tiny queue so cluster rejections actually happen.
        let (g, ids) = governor(2);
        let inputs: Vec<Tensor> = pairs().iter().map(|(full, _)| probe(full)).collect();
        let mut observed = [[0u64; 3]; 3]; // [tenant][accepted, shed, rejected]
        let mut tickets = Vec::new();
        for (op, pressure) in ops {
            if op < 3 {
                match g.submit(ids[op], &inputs[op]) {
                    Ok(t) => { observed[op][0] += 1; tickets.push(t); }
                    Err(GovernorError::Shed { .. }) => observed[op][1] += 1,
                    Err(GovernorError::Cluster(_)) => observed[op][2] += 1,
                    Err(e) => panic!("unexpected error: {e}"),
                }
            } else {
                // Ladder movement interleaved with traffic. A rung whose
                // hot-swap canary finds no queue room defers and retries;
                // occasionally drain so progress happens either way.
                g.tick_with(PressureSample::from_score(pressure));
                for t in tickets.drain(..) { let _ = t.wait(); }
            }
        }
        for t in tickets.drain(..) { let _ = t.wait(); }
        let report = g.report();
        prop_assert!(report.conserves(), "ledger must conserve: {report}");
        for (i, tr) in report.tenants.iter().enumerate() {
            prop_assert_eq!(tr.accepted, observed[i][0]);
            prop_assert_eq!(tr.shed, observed[i][1]);
            prop_assert_eq!(tr.rejected, observed[i][2]);
            prop_assert_eq!(
                tr.submitted,
                observed[i].iter().sum::<u64>(),
                "tenant {}: submitted must equal the observed outcomes", i
            );
        }
    }
}
