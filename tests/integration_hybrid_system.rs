//! End-to-end system tests: pretraining → continual learning → deployment
//! reporting → PE verification, plus determinism.

use pim_core::{HybridSystem, SystemConfig};
use pim_data::SyntheticSpec;
use pim_nn::models::BackboneConfig;
use pim_nn::train::FitConfig;
use pim_sparse::NmPattern;

fn config(pattern: Option<NmPattern>) -> SystemConfig {
    SystemConfig {
        backbone: BackboneConfig {
            in_channels: 3,
            image_size: 8,
            stage_widths: vec![8, 16],
            blocks_per_stage: 1,
            seed: 1,
        },
        rep_channels: 4,
        pattern,
        seed: 7,
    }
}

fn fit() -> FitConfig {
    FitConfig {
        epochs: 8,
        batch_size: 32,
        lr: 0.05,
        momentum: 0.9,
        weight_decay: 1e-4,
        seed: 3,
    }
}

fn upstream() -> pim_data::Task {
    SyntheticSpec::upstream_pretraining()
        .with_geometry(8, 3)
        .generate()
        .expect("valid spec")
}

#[test]
fn continual_sequence_keeps_backbone_frozen_and_learns_each_task() {
    let mut system =
        HybridSystem::pretrain(config(Some(NmPattern::one_of_four())), &upstream(), &fit());
    // Snapshot backbone weights.
    let mut before = Vec::new();
    system
        .model()
        .backbone()
        .visit_conv_weights(|w| before.push(w));

    let mut accuracies = Vec::new();
    for spec in [
        SyntheticSpec::cifar10_like(),
        SyntheticSpec::pets_like(),
        SyntheticSpec::cifar100_like(),
    ] {
        let task = spec
            .with_geometry(8, 3)
            .with_samples(5, 3)
            .generate()
            .expect("valid spec");
        let chance = 1.0 / task.train.classes() as f64;
        let report = system.learn_task(&task, &fit());
        assert!(
            report.accuracy_fp32 > chance,
            "{}: {} vs chance {}",
            report.task,
            report.accuracy_fp32,
            chance
        );
        accuracies.push(report.accuracy_fp32);
    }

    // Backbone unchanged after three tasks.
    let mut after = Vec::new();
    system
        .model()
        .backbone()
        .visit_conv_weights(|w| after.push(w));
    assert_eq!(before, after, "frozen backbone must not move");
}

#[test]
fn same_seed_reproduces_identical_results() {
    let up = upstream();
    let task = SyntheticSpec::cifar10_like()
        .with_geometry(8, 3)
        .with_samples(4, 2)
        .generate()
        .expect("valid spec");
    let run = |_: u32| {
        let mut system =
            HybridSystem::pretrain(config(Some(NmPattern::one_of_eight())), &up, &fit());
        system.learn_task(&task, &fit())
    };
    let a = run(0);
    let b = run(1);
    assert_eq!(a.accuracy_fp32, b.accuracy_fp32);
    assert_eq!(a.accuracy_int8, b.accuracy_int8);
    assert_eq!(a.history, b.history);
}

#[test]
fn deployment_scales_with_sparsity() {
    let up = upstream();
    let dense = HybridSystem::pretrain(config(None), &up, &fit());
    let sparse = HybridSystem::pretrain(config(Some(NmPattern::one_of_eight())), &up, &fit());
    let d_dense = dense.deployment().expect("mappable");
    let d_sparse = sparse.deployment().expect("mappable");
    assert!(
        d_sparse.mram.storage_bits < d_dense.mram.storage_bits,
        "sparse {} vs dense {}",
        d_sparse.mram.storage_bits,
        d_dense.mram.storage_bits
    );
}

#[test]
fn trained_sparse_system_is_bit_exact_on_pes() {
    let up = upstream();
    let mut system = HybridSystem::pretrain(config(Some(NmPattern::one_of_four())), &up, &fit());
    let task = SyntheticSpec::pets_like()
        .with_geometry(8, 3)
        .with_samples(3, 2)
        .generate()
        .expect("valid spec");
    system.learn_task(&task, &fit());
    let reports = system.verify_on_pes().expect("verification runs");
    assert!(reports.len() >= 5, "rep convs + classifier + transpose");
    for r in &reports {
        assert!(r.is_exact(), "{r}");
    }
}

#[test]
fn int8_quantization_tracks_fp32_closely() {
    let up = upstream();
    let mut system = HybridSystem::pretrain(config(Some(NmPattern::one_of_four())), &up, &fit());
    let task = SyntheticSpec::cifar10_like()
        .with_geometry(8, 3)
        .with_samples(8, 6)
        .with_difficulty(0.4)
        .generate()
        .expect("valid spec");
    let report = system.learn_task(&task, &fit());
    // Paper: INT8 within ~2% of FP32 on the transfer tasks; our tiny
    // models are noisier, so allow a wider but still meaningful band.
    assert!(
        report.accuracy_int8 >= report.accuracy_fp32 - 0.15,
        "int8 {} vs fp32 {}",
        report.accuracy_int8,
        report.accuracy_fp32
    );
}

#[test]
fn learnable_fraction_is_small_at_paper_scale_backbone() {
    // With the default (larger) backbone the rep path is a small fraction,
    // approaching the paper's ~5%.
    let up = SyntheticSpec::upstream_pretraining()
        .with_samples(2, 1)
        .generate()
        .expect("valid spec");
    let quick_fit = FitConfig { epochs: 1, ..fit() };
    let mut system = HybridSystem::pretrain(
        SystemConfig {
            backbone: BackboneConfig::default(),
            rep_channels: 8,
            pattern: None,
            seed: 7,
        },
        &up,
        &quick_fit,
    );
    let frac = system.model_mut().learnable_fraction();
    assert!(frac < 0.25, "learnable fraction {frac}");
}

#[test]
fn checkpoint_round_trips_a_trained_system() {
    use pim_nn::checkpoint;
    use pim_nn::train::Model;

    let up = upstream();
    let mut system = HybridSystem::pretrain(config(Some(NmPattern::one_of_four())), &up, &fit());
    let task = SyntheticSpec::cifar10_like()
        .with_geometry(8, 3)
        .with_samples(5, 4)
        .generate()
        .expect("valid spec");
    system.learn_task(&task, &fit());

    // Serialize the trained model (weights + BN calibration).
    let mut bytes = Vec::new();
    checkpoint::save(system.model_mut(), &mut bytes).expect("serializes");
    assert!(bytes.len() > 1000, "checkpoint holds real payload");

    // A structurally identical but untrained system must reproduce the
    // trained predictions exactly after restore.
    let mut fresh = HybridSystem::with_backbone(
        config(Some(NmPattern::one_of_four())),
        pim_nn::models::Backbone::new(config(None).backbone),
    );
    fresh.model_mut().reset_classifier(task.train.classes(), 99);
    let (x, _) = task.test.batch(&[0, 1, 2, 3, 4]);
    let trained_logits = system.model_mut().predict(&x, false);
    assert_ne!(fresh.model_mut().predict(&x, false), trained_logits);
    checkpoint::load(fresh.model_mut(), bytes.as_slice()).expect("shapes match");
    assert_eq!(fresh.model_mut().predict(&x, false), trained_logits);
}

#[test]
fn restored_system_still_verifies_bit_exactly_on_pes() {
    use pim_nn::checkpoint;

    let up = upstream();
    let mut system = HybridSystem::pretrain(config(Some(NmPattern::one_of_eight())), &up, &fit());
    let task = SyntheticSpec::pets_like()
        .with_geometry(8, 3)
        .with_samples(3, 2)
        .generate()
        .expect("valid spec");
    system.learn_task(&task, &fit());

    let mut bytes = Vec::new();
    checkpoint::save(system.model_mut(), &mut bytes).expect("serializes");
    let mut restored = HybridSystem::with_backbone(
        config(Some(NmPattern::one_of_eight())),
        pim_nn::models::Backbone::new(config(None).backbone),
    );
    restored
        .model_mut()
        .reset_classifier(task.train.classes(), 1);
    checkpoint::load(restored.model_mut(), bytes.as_slice()).expect("shapes match");

    // Note: checkpoints carry values, not masks; the restored weights are
    // still exactly N:M-sparse (zeros in pruned slots), so the dense 4:4
    // verification path covers them bit-exactly.
    for report in restored.verify_on_pes().expect("verification runs") {
        assert!(report.is_exact(), "{report}");
    }
}
