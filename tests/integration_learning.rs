//! Learning-dynamics integration tests: the accuracy relationships that
//! make Table 1 meaningful must hold on a controlled task.

use pim_core::{HybridSystem, SystemConfig};
use pim_data::SyntheticSpec;
use pim_nn::models::BackboneConfig;
use pim_nn::train::{FitConfig, Model};
use pim_sparse::NmPattern;

fn backbone() -> BackboneConfig {
    // Wide enough that 87.5% magnitude pruning leaves the frozen branch
    // with usable features (the paper's ResNet-50 absorbs this easily; a
    // too-narrow test backbone would collapse to chance at 1:8).
    BackboneConfig {
        in_channels: 3,
        image_size: 8,
        stage_widths: vec![16, 32],
        blocks_per_stage: 1,
        seed: 1,
    }
}

fn fit(epochs: usize) -> FitConfig {
    FitConfig {
        epochs,
        batch_size: 32,
        lr: 0.05,
        momentum: 0.9,
        weight_decay: 1e-4,
        seed: 3,
    }
}

fn run(pattern: Option<NmPattern>, difficulty: f64) -> (f64, f64) {
    let upstream = SyntheticSpec::upstream_pretraining()
        .with_geometry(8, 3)
        .generate()
        .expect("valid spec");
    let mut system = HybridSystem::pretrain(
        SystemConfig {
            backbone: backbone(),
            rep_channels: 8,
            pattern,
            seed: 7,
        },
        &upstream,
        &fit(8),
    );
    let task = SyntheticSpec::cifar10_like()
        .with_geometry(8, 3)
        .with_samples(10, 6)
        .with_difficulty(difficulty)
        .generate()
        .expect("valid spec");
    let report = system.learn_task(&task, &fit(10));
    (report.accuracy_fp32, report.accuracy_int8)
}

#[test]
fn accuracy_orders_with_sparsity_like_the_paper() {
    // The paper's headline shape: dense ≥ 1:4 ≥ 1:8, all above chance.
    // Our miniature backbone amplifies the pruning penalty relative to
    // ResNet-50 (documented in EXPERIMENTS.md), so we assert the ordering
    // and above-chance margins, not the paper's 1.5%/5% deltas.
    let (dense, _) = run(None, 0.6);
    let (sparse14, _) = run(Some(NmPattern::one_of_four()), 0.6);
    let (sparse18, _) = run(Some(NmPattern::one_of_eight()), 0.6);
    assert!(dense > 0.5, "dense learns the task: {dense}");
    assert!(
        dense >= sparse14 - 0.05,
        "dense {dense} vs sparse 1:4 {sparse14}"
    );
    assert!(
        sparse14 >= sparse18 - 0.08,
        "1:4 {sparse14} vs 1:8 {sparse18}"
    );
    // Both sparse configurations stay clearly above 10-class chance.
    assert!(sparse14 > 0.2, "{sparse14}");
    assert!(sparse18 > 0.15, "{sparse18}");
}

#[test]
fn int8_is_close_to_fp32_in_every_configuration() {
    for pattern in [
        None,
        Some(NmPattern::one_of_four()),
        Some(NmPattern::one_of_eight()),
    ] {
        let (fp32, int8) = run(pattern, 0.5);
        assert!(
            int8 >= fp32 - 0.15,
            "{pattern:?}: int8 {int8} vs fp32 {fp32}"
        );
    }
}

#[test]
fn sparse_training_touches_fewer_weights() {
    let upstream = SyntheticSpec::upstream_pretraining()
        .with_geometry(8, 3)
        .with_samples(3, 1)
        .generate()
        .expect("valid spec");
    let quick = fit(1);
    let mut dense = HybridSystem::pretrain(
        SystemConfig {
            backbone: backbone(),
            rep_channels: 4,
            pattern: None,
            seed: 7,
        },
        &upstream,
        &quick,
    );
    let mut sparse = HybridSystem::pretrain(
        SystemConfig {
            backbone: backbone(),
            rep_channels: 4,
            pattern: Some(NmPattern::one_of_four()),
            seed: 7,
        },
        &upstream,
        &quick,
    );
    let task = SyntheticSpec::cifar10_like()
        .with_geometry(8, 3)
        .with_samples(3, 2)
        .generate()
        .expect("valid spec");
    dense.learn_task(&task, &quick);
    sparse.learn_task(&task, &quick);

    // Count weights the sparse model is allowed to move.
    let count_learnable = |sys: &HybridSystem| {
        let mut kept = 0usize;
        for m in sys.model().modules() {
            for conv in m.sparse_convs() {
                kept += conv.learnable_weights();
            }
        }
        kept + sys.model().classifier().learnable_weights()
    };
    let dense_learnable = count_learnable(&dense);
    let sparse_learnable = count_learnable(&sparse);
    assert!(
        (sparse_learnable as f64) < 0.5 * dense_learnable as f64,
        "sparse {sparse_learnable} vs dense {dense_learnable}"
    );
}

#[test]
fn harder_tasks_are_harder() {
    let (easy, _) = run(Some(NmPattern::one_of_four()), 0.3);
    let (hard, _) = run(Some(NmPattern::one_of_four()), 1.4);
    assert!(easy > hard, "easy {easy} vs hard {hard}");
}

#[test]
fn rep_path_learns_while_backbone_params_stay_majority_frozen() {
    let upstream = SyntheticSpec::upstream_pretraining()
        .with_geometry(8, 3)
        .with_samples(3, 1)
        .generate()
        .expect("valid spec");
    let mut system = HybridSystem::pretrain(
        SystemConfig {
            backbone: backbone(),
            rep_channels: 4,
            pattern: None,
            seed: 7,
        },
        &upstream,
        &fit(1),
    );
    let total: usize = {
        let m = system.model_mut();
        let mut n = 0;
        Model::params(m, &mut |p| n += p.value.len());
        n
    };
    let trainable = system.model_mut().trainable_params();
    assert!(trainable * 2 < total, "trainable {trainable} of {total}");
}

#[test]
fn shared_adaptor_interference_is_measurable_but_bounded() {
    // Learn task A, snapshot its head, learn task B (shared rep path
    // drifts), then re-evaluate A with its old head: the Rep-Net design
    // confines forgetting to the shared adaptor, so A stays well above
    // chance even though its accuracy may dip.
    let upstream = SyntheticSpec::upstream_pretraining()
        .with_geometry(8, 3)
        .generate()
        .expect("valid spec");
    let mut system = HybridSystem::pretrain(
        SystemConfig {
            backbone: backbone(),
            rep_channels: 8,
            pattern: None,
            seed: 7,
        },
        &upstream,
        &fit(8),
    );
    let task_a = SyntheticSpec::cifar10_like()
        .with_geometry(8, 3)
        .with_samples(10, 6)
        .with_difficulty(0.5)
        .generate()
        .expect("valid spec");
    let task_b = SyntheticSpec::pets_like()
        .with_geometry(8, 3)
        .with_samples(6, 3)
        .with_difficulty(0.5)
        .generate()
        .expect("valid spec");

    let report_a = system.learn_task(&task_a, &fit(10));
    let head_a = system.snapshot_head();
    let before = system.evaluate_with_head(&head_a, &task_a.test);
    assert!(
        (before - report_a.accuracy_fp32).abs() < 1e-9,
        "snapshot evaluation must equal the fresh report"
    );

    system.learn_task(&task_b, &fit(10));
    let after = system.evaluate_with_head(&head_a, &task_a.test);
    let chance = 0.1;
    assert!(after > chance * 1.5, "task A collapsed to {after}");
    // And the current head still serves task B.
    let head_b = system.snapshot_head();
    let b_acc = system.evaluate_with_head(&head_b, &task_b.test);
    assert!(b_acc > 1.0 / 37.0 * 2.0, "task B at {b_acc}");
}

#[test]
#[should_panic(expected = "head does not match the task")]
fn head_task_mismatch_is_rejected() {
    let upstream = SyntheticSpec::upstream_pretraining()
        .with_geometry(8, 3)
        .with_samples(2, 1)
        .generate()
        .expect("valid spec");
    let mut system = HybridSystem::pretrain(
        SystemConfig {
            backbone: backbone(),
            rep_channels: 8,
            pattern: None,
            seed: 7,
        },
        &upstream,
        &fit(1),
    );
    let ten = SyntheticSpec::cifar10_like()
        .with_geometry(8, 3)
        .with_samples(2, 1)
        .generate()
        .expect("valid spec");
    let hundred = SyntheticSpec::cifar100_like()
        .with_geometry(8, 3)
        .with_samples(1, 1)
        .generate()
        .expect("valid spec");
    system.learn_task(&ten, &fit(1));
    let head = system.snapshot_head();
    let _ = system.evaluate_with_head(&head, &hundred.test);
}
