//! End-to-end determinism tests for the `pim-par` work pool: the
//! parallel forward path must be **bit-exact** with serial execution —
//! identical logits, identical f64 `PeStats` ledgers — at both the
//! `PeRepNet` level and through the serving runtime. CI runs this as the
//! threads=1 vs threads=4 smoke in the regression gate.

use pim_core::pe_inference::PeRepNet;
use pim_data::SyntheticSpec;
use pim_nn::models::{Backbone, BackboneConfig, RepNet, RepNetConfig};
use pim_nn::tensor::Tensor;
use pim_par::WorkPool;
use pim_runtime::{CompiledModel, Runtime};
use std::sync::Arc;
use std::time::Duration;

fn tiny_model(seed: u64) -> RepNet {
    RepNet::new(
        Backbone::new(BackboneConfig::tiny()),
        RepNetConfig {
            rep_channels: 4,
            num_classes: 5,
            seed,
        },
    )
}

/// Deterministic single-sample inputs matching `BackboneConfig::tiny()`.
fn tiny_inputs(count: usize) -> Vec<Tensor> {
    let task = SyntheticSpec::cifar10_like()
        .with_geometry(8, 1)
        .with_samples(1, count.div_ceil(10))
        .generate()
        .expect("synthetic task");
    (0..count)
        .map(|i| task.test.inputs().batch_item(i))
        .collect()
}

/// A deterministic `[N, C, H, W]` batch from the same generator.
fn tiny_batch(count: usize) -> Tensor {
    let task = SyntheticSpec::cifar10_like()
        .with_geometry(8, 1)
        .with_samples(1, count.div_ceil(10))
        .generate()
        .expect("synthetic task");
    let indices: Vec<usize> = (0..count).collect();
    let (x, _) = task.test.batch(&indices);
    x
}

fn logit_bits(t: &Tensor) -> Vec<u32> {
    t.as_slice().iter().map(|v| v.to_bits()).collect()
}

#[test]
fn parallel_predict_is_bit_exact_with_serial() {
    let model = tiny_model(3);

    let mut model_s = model.clone();
    let mut serial = PeRepNet::compile(&mut model_s).expect("compile");
    let mut model_p = model.clone();
    let mut parallel = serial.clone();
    parallel.attach_pool(Arc::new(WorkPool::with_forced_threads(4)));

    let x = tiny_batch(8);
    let (logits_s, stats_s) = serial.predict(&mut model_s, &x);
    let (logits_p, stats_p) = parallel.predict(&mut model_p, &x);

    assert_eq!(
        logit_bits(&logits_s),
        logit_bits(&logits_p),
        "4-thread logits diverged from serial at the bit level"
    );
    assert_eq!(stats_s, stats_p, "run ledgers must replay identically");
    assert_eq!(
        serial.cumulative_stats(),
        parallel.cumulative_stats(),
        "cumulative per-tile ledgers must agree bit-exactly"
    );
}

#[test]
fn runtime_threads_1_and_4_serve_identical_answers() {
    let model = tiny_model(9);
    let inputs = tiny_inputs(12);

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let serve = |par_threads: usize| {
        let mut builder = Runtime::builder()
            .workers(1)
            .queue_capacity(32)
            .max_batch(4)
            .max_wait(Duration::from_millis(20))
            // An eager threshold so a genuinely wide pool must dispatch
            // even this tiny model's fan-outs.
            .spawn_threshold(1)
            .par_threads(par_threads);
        let id = builder.register(CompiledModel::compile("tiny", &model).expect("compile"));
        let runtime = builder.start();
        // The runtime clamps the requested width to the physical cores.
        assert_eq!(runtime.par_threads(), par_threads.min(cores));
        let tickets: Vec<_> = inputs
            .iter()
            .map(|x| runtime.submit(id, x).expect("submit"))
            .collect();
        let answers: Vec<(Vec<u32>, usize)> = tickets
            .into_iter()
            .map(|t| {
                let r = t.wait().expect("response");
                let bits = r.logits.iter().map(|v| v.to_bits()).collect();
                (bits, r.prediction)
            })
            .collect();
        let counters = runtime.pool_counters();
        let stats = runtime.shutdown();
        assert_eq!(stats.requests_completed, inputs.len() as u64);
        (answers, counters)
    };

    let (serial_answers, serial_counters) = serve(1);
    let (parallel_answers, parallel_counters) = serve(4);

    assert_eq!(
        serial_answers, parallel_answers,
        "served logits must be independent of the pool width"
    );

    // A serial pool never dispatches to workers. A 4-wide pool must have
    // actually fanned work out (and the caller always participates) —
    // unless the host has a single core, where the requested width
    // degrades to the pure-inline path with no dispatch at all.
    assert_eq!(serial_counters.worker_tasks, 0);
    // A serial pool has no deques: nothing to steal, split, or park on.
    assert_eq!(
        (
            serial_counters.steals,
            serial_counters.parks,
            serial_counters.splits
        ),
        (0, 0, 0),
        "serial pool must never touch the work-stealing machinery"
    );
    if cores >= 2 {
        assert!(parallel_counters.jobs > 0, "no parallel jobs ran");
        assert!(
            parallel_counters.caller_tasks + parallel_counters.worker_tasks > 0,
            "jobs ran but no tasks were attributed"
        );
        // Stolen work only exists as split-off ranges: a steal without a
        // recorded split would mean the deques invented tasks.
        if parallel_counters.steals > 0 {
            assert!(
                parallel_counters.splits > 0,
                "steals require split-off ranges to exist"
            );
        }
    } else {
        assert_eq!(parallel_counters.jobs, 0, "clamped pool must not dispatch");
        assert_eq!(parallel_counters.worker_tasks, 0);
        assert_eq!(parallel_counters.steals, 0);
        assert!(parallel_counters.inline_jobs > 0, "inline path must run");
    }
}
