//! Cross-crate functional-exactness suite: both cycle-level PEs and the
//! transposed buffer must agree bit-for-bit with the `pim-sparse`
//! reference kernels, and with the NN-side quantized arithmetic, across
//! randomized shapes and patterns.

use pim_nn::quant::{quantize_matrix, QuantParams};
use pim_pe::{MramSparsePe, SparsePe, SramSparsePe, TransposedSramPe};
use pim_sparse::gemm::{bit_serial_matvec, dense_matvec, masked_dense};
use pim_sparse::prune::prune_magnitude;
use pim_sparse::{CscMatrix, Matrix, NmPattern};
use proptest::prelude::*;

fn arb_pattern() -> impl Strategy<Value = NmPattern> {
    prop_oneof![
        Just(NmPattern::one_of_four()),
        Just(NmPattern::one_of_eight()),
        Just(NmPattern::two_of_four()),
        Just(NmPattern::new(2, 8).expect("valid")),
        Just(NmPattern::new(1, 16).expect("valid")),
        Just(NmPattern::new(4, 16).expect("valid")),
    ]
}

fn arb_tile() -> impl Strategy<Value = (Matrix<i8>, Vec<i8>)> {
    (8usize..96, 1usize..8).prop_flat_map(|(rows, cols)| {
        (
            proptest::collection::vec(any::<i8>(), rows * cols),
            proptest::collection::vec(any::<i8>(), rows),
        )
            .prop_map(move |(w, x)| (Matrix::from_vec(rows, cols, w).expect("sized"), x))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sram_pe_equals_reference_on_random_tiles(
        (dense, x) in arb_tile(),
        pattern in arb_pattern(),
    ) {
        let mask = prune_magnitude(&dense, pattern).expect("non-empty");
        let csc = CscMatrix::compress(&dense, &mask).expect("fits");
        let mut pe = SramSparsePe::new();
        pe.load(&csc).expect("capacity");
        let got = pe.matvec(&x).expect("loaded").outputs;
        let wide: Vec<i32> = x.iter().map(|&v| v as i32).collect();
        let expect = dense_matvec(&masked_dense(&dense, &mask).expect("fits"), &wide)
            .expect("length");
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn mram_pe_equals_reference_on_random_tiles(
        (dense, x) in arb_tile(),
        pattern in arb_pattern(),
    ) {
        let mask = prune_magnitude(&dense, pattern).expect("non-empty");
        let csc = CscMatrix::compress(&dense, &mask).expect("fits");
        let mut pe = MramSparsePe::new();
        pe.load(&csc).expect("capacity");
        let got = pe.matvec(&x).expect("loaded").outputs;
        let wide: Vec<i32> = x.iter().map(|&v| v as i32).collect();
        prop_assert_eq!(got, csc.matvec(&wide).expect("length"));
    }

    #[test]
    fn both_pes_agree_with_each_other(
        (dense, x) in arb_tile(),
        pattern in arb_pattern(),
    ) {
        let csc = CscMatrix::compress(
            &dense,
            &prune_magnitude(&dense, pattern).expect("non-empty"),
        )
        .expect("fits");
        let mut sram = SramSparsePe::new();
        let mut mram = MramSparsePe::new();
        sram.load(&csc).expect("capacity");
        mram.load(&csc).expect("capacity");
        prop_assert_eq!(
            sram.matvec(&x).expect("loaded").outputs,
            mram.matvec(&x).expect("loaded").outputs
        );
    }

    #[test]
    fn transposed_buffer_implements_eq1(
        (dense, _) in arb_tile(),
        pattern in arb_pattern(),
        es in proptest::collection::vec(-500i32..500, 8),
    ) {
        let mask = prune_magnitude(&dense, pattern).expect("non-empty");
        let masked = mask.apply(&dense).expect("fits");
        let mut buf = TransposedSramPe::new();
        if buf.write_transposed(&masked).is_ok() {
            let e = &es[..masked.cols()];
            let got = buf.matvec(e).expect("loaded").outputs;
            let expect = dense_matvec(&masked.transposed(), e).expect("length");
            prop_assert_eq!(got, expect);
        }
    }

    #[test]
    fn quantized_nn_weights_run_bit_true_on_pes(
        seedling in proptest::collection::vec(-2.0f32..2.0, 32 * 6),
        xs in proptest::collection::vec(any::<i8>(), 32),
    ) {
        // An f32 "layer weight" quantized the NN way must produce the same
        // integer accumulators on a PE as the reference integer GEMM.
        let wf = Matrix::from_vec(32, 6, seedling).expect("sized");
        let (wq, _params): (Matrix<i8>, QuantParams) = quantize_matrix(&wf);
        let pattern = NmPattern::two_of_four();
        let mask = prune_magnitude(&wq, pattern).expect("non-empty");
        let csc = CscMatrix::compress(&wq, &mask).expect("fits");
        let mut pe = SramSparsePe::new();
        pe.load(&csc).expect("capacity");
        let got = pe.matvec(&xs).expect("loaded").outputs;
        let wide: Vec<i32> = xs.iter().map(|&v| v as i32).collect();
        prop_assert_eq!(got, csc.matvec(&wide).expect("length"));
    }

    #[test]
    fn bit_serial_reference_is_internally_consistent(
        (dense, x) in arb_tile(),
    ) {
        // The SRAM PE's arithmetic decomposition equals plain integer GEMM.
        let wide: Vec<i32> = x.iter().map(|&v| v as i32).collect();
        prop_assert_eq!(
            bit_serial_matvec(&dense, &x).expect("length"),
            dense_matvec(&dense, &wide).expect("length")
        );
    }
}

/// Loads `csc` into two fresh PEs and checks that one `matvec_batch` call
/// is indistinguishable from per-input `matvec_into` calls: same outputs,
/// same per-matvec cost, bit-exact identical stats ledgers, and outputs
/// matching the bit-serial reference on the masked dense tile.
fn assert_batched_equals_sequential<P: SparsePe>(
    mut seq: P,
    mut bat: P,
    csc: &CscMatrix,
    reference: &Matrix<i8>,
    xs: &[i8],
    batch: usize,
) {
    let rows = reference.rows();
    let cols = reference.cols();
    seq.load(csc).expect("capacity");
    bat.load(csc).expect("capacity");
    let mut y_seq = vec![0i32; batch * cols];
    let mut seq_costs = Vec::with_capacity(batch);
    for b in 0..batch {
        let x = &xs[b * rows..(b + 1) * rows];
        let cost = seq
            .matvec_into(x, &mut y_seq[b * cols..(b + 1) * cols])
            .expect("loaded");
        seq_costs.push(cost);
        let oracle = bit_serial_matvec(reference, x).expect("length");
        assert_eq!(&y_seq[b * cols..(b + 1) * cols], &oracle[..], "input {b}");
    }
    let mut y_bat = vec![0i32; batch * cols];
    let bat_cost = bat.matvec_batch(xs, batch, &mut y_bat).expect("loaded");
    assert_eq!(y_seq, y_bat, "batched outputs drifted from sequential");
    for cost in seq_costs {
        assert_eq!(cost, bat_cost, "per-matvec cost is shape-determined");
    }
    assert_eq!(seq.stats(), bat.stats(), "ledgers must be bit-exact equal");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn batched_execution_equals_sequential_on_random_tiles(
        (dense, x) in arb_tile(),
        pattern in arb_pattern(),
        batch in 1usize..7,
    ) {
        let mask = prune_magnitude(&dense, pattern).expect("non-empty");
        let csc = CscMatrix::compress(&dense, &mask).expect("fits");
        let reference = masked_dense(&dense, &mask).expect("fits");
        // Batch inputs derived from the seed vector, varied per slot.
        let xs: Vec<i8> = (0..batch)
            .flat_map(|b| x.iter().map(move |&v| v.wrapping_mul(b as i8 + 1)))
            .collect();
        assert_batched_equals_sequential(
            SramSparsePe::new(),
            SramSparsePe::new(),
            &csc,
            &reference,
            &xs,
            batch,
        );
        assert_batched_equals_sequential(
            MramSparsePe::new(),
            MramSparsePe::new(),
            &csc,
            &reference,
            &xs,
            batch,
        );
    }
}

#[test]
fn pe_stats_accumulate_identically_for_identical_work() {
    let dense = Matrix::from_fn(64, 8, |r, c| ((r * 3 + c * 5) % 21) as i8 - 10);
    let csc = CscMatrix::compress_auto(&dense, NmPattern::one_of_four()).expect("fits");
    let x = vec![1i8; 64];
    let mut a = SramSparsePe::new();
    let mut b = SramSparsePe::new();
    for pe in [&mut a, &mut b] {
        pe.load(&csc).expect("capacity");
        pe.matvec(&x).expect("loaded");
        pe.matvec(&x).expect("loaded");
    }
    assert_eq!(a.stats(), b.stats());
}
