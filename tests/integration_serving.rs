//! End-to-end tests of the `pim-runtime` serving engine: batching
//! bit-exactness, bounded-queue backpressure, and graceful shutdown.

use pim_core::pe_inference::PeRepNet;
use pim_data::SyntheticSpec;
use pim_nn::models::{Backbone, BackboneConfig, RepNet, RepNetConfig};
use pim_nn::tensor::Tensor;
use pim_runtime::{CompiledModel, Runtime, RuntimeError};
use std::time::Duration;

fn tiny_model(seed: u64) -> RepNet {
    RepNet::new(
        Backbone::new(BackboneConfig::tiny()),
        RepNetConfig {
            rep_channels: 4,
            num_classes: 5,
            seed,
        },
    )
}

/// Deterministic single-sample inputs matching `BackboneConfig::tiny()`.
fn tiny_inputs(count: usize) -> Vec<Tensor> {
    let task = SyntheticSpec::cifar10_like()
        .with_geometry(8, 1)
        .with_samples(1, count.div_ceil(10))
        .generate()
        .expect("synthetic task");
    (0..count)
        .map(|i| task.test.inputs().batch_item(i))
        .collect()
}

#[test]
fn coalesced_batches_are_bit_exact_with_sequential_inference() {
    let model = tiny_model(3);
    let inputs = tiny_inputs(24);

    // Sequential reference: one sample at a time through a private
    // compiled branch.
    let mut reference_model = model.clone();
    let mut reference = PeRepNet::compile(&mut reference_model).expect("compile");
    let sequential: Vec<Vec<f32>> = inputs
        .iter()
        .map(|x| {
            let (logits, _) = reference.predict(&mut reference_model, x);
            logits.as_slice().to_vec()
        })
        .collect();

    // One worker and a generous hold-open window force coalescing.
    let mut builder = Runtime::builder()
        .workers(1)
        .queue_capacity(64)
        .max_batch(8)
        .max_wait(Duration::from_millis(100));
    let id = builder.register(CompiledModel::compile("tiny", &model).expect("compile"));
    let runtime = builder.start();

    let tickets: Vec<_> = inputs
        .iter()
        .map(|x| runtime.submit(id, x).expect("submit"))
        .collect();
    let responses: Vec<_> = tickets
        .into_iter()
        .map(|t| t.wait().expect("response"))
        .collect();

    for (i, (response, expected)) in responses.iter().zip(&sequential).enumerate() {
        assert_eq!(
            &response.logits, expected,
            "sample {i} diverged from sequential inference \
             (batch_size {})",
            response.batch_size
        );
        assert!(response.latency.as_ns() > 0.0, "sample {i} has no latency");
        assert!(response.energy.as_pj() > 0.0, "sample {i} has no energy");
    }

    let stats = runtime.shutdown();
    assert_eq!(stats.requests_completed, 24);
    assert!(
        stats.max_batch_size > 1,
        "expected coalescing, got max batch {}",
        stats.max_batch_size
    );
    assert!(stats.batches < 24, "no batching happened at all");
    assert!(stats.total_energy.as_pj() > 0.0);
    assert!(stats.edp > 0.0);
}

#[test]
fn full_queue_rejects_with_typed_error_instead_of_blocking() {
    let blocker = tiny_model(5);
    let victim = tiny_model(7);

    // One worker; the blocker request holds it open for the whole
    // max_wait window, so incompatible (different-model) requests pile
    // up in the bounded queue behind it.
    let mut builder = Runtime::builder()
        .workers(1)
        .queue_capacity(2)
        .max_batch(8)
        .max_wait(Duration::from_millis(400));
    let blocker_id =
        builder.register(CompiledModel::compile("blocker", &blocker).expect("compile"));
    let victim_id = builder.register(CompiledModel::compile("victim", &victim).expect("compile"));
    let runtime = builder.start();

    let input = Tensor::ones(runtime.models()[0].input_shape());
    let seed_ticket = runtime.submit(blocker_id, &input).expect("seed");
    // Wait until the worker has popped the seed and is holding its batch
    // open; only then is the queue empty for the victims.
    while runtime.queue_depth() > 0 {
        std::thread::sleep(Duration::from_micros(50));
    }

    let v1 = runtime.submit(victim_id, &input).expect("victim 1 fits");
    let v2 = runtime.submit(victim_id, &input).expect("victim 2 fits");
    let overflow = runtime.submit(victim_id, &input);
    assert!(
        matches!(overflow, Err(RuntimeError::QueueFull { capacity: 2 })),
        "expected QueueFull, got {overflow:?}"
    );

    // Everyone accepted still gets an answer.
    assert!(seed_ticket.wait().is_ok());
    assert!(v1.wait().is_ok());
    assert!(v2.wait().is_ok());

    let stats = runtime.shutdown();
    assert_eq!(stats.requests_completed, 3);
    assert_eq!(stats.requests_rejected, 1);
}

#[test]
fn graceful_shutdown_answers_every_in_flight_request() {
    let model = tiny_model(9);
    let mut builder = Runtime::builder()
        .workers(2)
        .queue_capacity(64)
        .max_batch(4)
        .max_wait(Duration::from_millis(5));
    let id = builder.register(CompiledModel::compile("tiny", &model).expect("compile"));
    let runtime = builder.start();

    let inputs = tiny_inputs(20);
    let tickets: Vec<_> = inputs
        .iter()
        .map(|x| runtime.submit(id, x).expect("submit"))
        .collect();

    // Shut down immediately: intake closes, but every accepted request
    // must still be served before the workers exit.
    let stats = runtime.shutdown();
    assert_eq!(stats.requests_completed, 20);

    for (i, ticket) in tickets.into_iter().enumerate() {
        let response = ticket.wait().unwrap_or_else(|e| {
            panic!("request {i} was dropped during shutdown: {e}");
        });
        assert!(response.prediction < 5);
    }
}
