//! Integration: the telemetry subsystem wired through the full stack.
//!
//! Proves the two contracts the instrumentation is accountable for:
//!
//! 1. **Prometheus rendering round-trips the registry** — every metric
//!    family registered by the runtime, the learn engine, and the PE
//!    mirrors appears in `render_prometheus` output with its HELP/TYPE
//!    header.
//! 2. **The mirror is bit-exact** — after a serve → learn → publish(swap)
//!    → serve-again cycle on a single worker, the energy/op counters sum
//!    to exactly the same f64 bits as the authoritative `PeStats` ledgers
//!    (`RuntimeStats` on the serve side, `LearnReport` on the learn side).

use pim_learn::{LearnEngine, OnlineLearnerConfig, WritePolicy};
use pim_nn::models::{Backbone, BackboneConfig, RepNet, RepNetConfig};
use pim_nn::tensor::Tensor;
use pim_pe::PeTelemetry;
use pim_runtime::{ModelId, Runtime, Telemetry};
use std::collections::HashSet;
use std::sync::Arc;
use std::time::Duration;

fn sample(i: usize) -> Tensor {
    Tensor::from_vec(
        vec![1, 8, 8],
        (0..64).map(|v| ((v * 3 + i) % 11) as f32 / 11.0).collect(),
    )
    .expect("sample shape")
}

fn engine(telemetry: &Arc<Telemetry>) -> LearnEngine {
    let model = RepNet::new(
        Backbone::new(BackboneConfig::tiny()),
        RepNetConfig {
            rep_channels: 4,
            num_classes: 3,
            seed: 5,
        },
    );
    let mut engine = LearnEngine::new(
        "live",
        model,
        OnlineLearnerConfig {
            replay_capacity: 32,
            batch_size: 4,
            seed: 21,
            ..OnlineLearnerConfig::default()
        },
        WritePolicy::hybrid_dac24(1 << 20),
    )
    .expect("adaptor fits the PEs");
    engine.attach_telemetry(telemetry);
    engine
}

/// Drives a full serve → learn → publish → serve cycle on one worker and
/// returns everything the assertions need.
fn serve_learn_swap_cycle(
    telemetry: &Arc<Telemetry>,
) -> (pim_runtime::RuntimeStats, pim_learn::LearnReport, ModelId) {
    let mut engine = engine(telemetry);
    // One worker: the counters then see the same f64 additions in the
    // same order as the runtime's own ledger (bit-exactness needs a
    // deterministic accumulation order).
    let mut builder = Runtime::builder()
        .workers(1)
        .max_wait(Duration::ZERO)
        .telemetry(Arc::clone(telemetry));
    let id = builder.register(engine.compiled());
    let runtime = builder.start();

    for i in 0..16 {
        engine.observe(&sample(i), i % 3);
    }
    for i in 0..8 {
        runtime.infer(id, &sample(100 + i)).expect("serve");
    }
    for _ in 0..4 {
        engine.step().expect("step");
    }
    engine.publish(&runtime, id).expect("publish");
    for i in 0..8 {
        runtime
            .infer(id, &sample(200 + i))
            .expect("serve after swap");
    }

    let stats = runtime.shutdown();
    (stats, engine.report(), id)
}

#[test]
fn prometheus_rendering_round_trips_every_registered_family() {
    let telemetry = Telemetry::new();
    let (_stats, _report, _id) = serve_learn_swap_cycle(&telemetry);

    let names = telemetry.registry.metric_names();
    assert!(
        names.len() >= 10,
        "the wired stack registers many families, got {names:?}"
    );
    let text = telemetry.registry.render_prometheus();
    for name in &names {
        assert!(
            text.contains(&format!("# HELP {name} ")),
            "family {name} lost its HELP header in the exposition"
        );
        assert!(
            text.contains(&format!("# TYPE {name} ")),
            "family {name} lost its TYPE header in the exposition"
        );
    }
    // Spot-check the shapes: labelled counter samples and cumulative
    // histogram buckets with the +Inf terminator.
    assert!(text.contains("pim_pe_energy_picojoules_total{source=\"serve\",channel=\"read\"}"));
    assert!(text.contains("pim_runtime_stage_seconds_bucket{stage=\"compute\",le=\"+Inf\"}"));
    assert!(text.contains("pim_learn_stage_seconds_count{stage=\"write_back\"}"));
}

#[test]
fn telemetry_counters_sum_bit_exactly_to_the_ledgers() {
    let telemetry = Telemetry::new();
    let (stats, report, _id) = serve_learn_swap_cycle(&telemetry);
    let registry = &telemetry.registry;

    // Serve side: the source="serve" PE mirror vs the RuntimeStats ledger.
    assert_eq!(stats.requests_completed, 16);
    assert_eq!(stats.model_swaps, 1);
    let serve = PeTelemetry::register(registry, "serve");
    assert_eq!(
        serve.total_energy_pj().to_bits(),
        stats.total_energy.as_pj().to_bits(),
        "serve energy mirror must reproduce the ledger total bit-for-bit"
    );
    let counter = |name: &str, help: &str, source: &str| {
        registry
            .counter_with(name, help, &[("source", source)])
            .value()
    };
    assert_eq!(
        counter("pim_pe_macs_total", "MAC operations executed", "serve") as u64,
        stats.macs
    );
    assert_eq!(
        counter("pim_pe_matvecs_total", "PE matvec operations", "serve") as u64,
        stats.pe_matvecs
    );
    assert_eq!(
        registry
            .counter(
                "pim_runtime_requests_total",
                "Requests answered by the serving pool"
            )
            .value() as u64,
        stats.requests_completed
    );
    assert_eq!(
        registry
            .counter(
                "pim_runtime_swaps_total",
                "Hot model swaps published into serving"
            )
            .value() as u64,
        stats.model_swaps
    );

    // Learn side: the source="learn" PE mirror vs the LearnReport ledger.
    // Serving the published artifact must NOT have fed these counters —
    // `CompiledModel::from_branch` detaches the learn-side telemetry.
    assert_eq!(report.publishes, 1);
    assert_eq!(report.mram_write_bits, 0, "backbone stays write-protected");
    let learn = PeTelemetry::register(registry, "learn");
    assert_eq!(
        learn.energy_pj()[2].to_bits(),
        report.write_energy.as_pj().to_bits(),
        "learn write-energy mirror must reproduce the ledger bit-for-bit"
    );
    assert_eq!(
        counter(
            "pim_pe_write_bits_total",
            "Device bits toggled by writes",
            "learn"
        ) as u64,
        report.sram_write_bits
    );
    assert_eq!(
        counter("pim_pe_matvecs_total", "PE matvec operations", "learn"),
        0.0,
        "served traffic leaked into the learn-side counters"
    );
    assert_eq!(
        registry
            .counter(
                "pim_learn_publishes_total",
                "Differential write-backs performed (model versions)",
            )
            .value() as u64,
        report.publishes
    );

    // The tracer saw the whole cycle.
    let span_names: HashSet<String> = telemetry
        .tracer
        .snapshot()
        .into_iter()
        .map(|e| e.name)
        .collect();
    for expected in [
        "serve.request",
        "serve.batch",
        "serve.swap",
        "learn.sgd_step",
        "learn.preflight",
        "learn.write_back",
        "learn.swap",
    ] {
        assert!(
            span_names.contains(expected),
            "missing span/event '{expected}' in {span_names:?}"
        );
    }
    assert_eq!(telemetry.tracer.dropped(), 0, "ring must not overflow here");
}
