//! Vendored std-only stand-in for the `criterion` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the subset of the criterion API its benches use:
//! [`Criterion::benchmark_group`] / `bench_function`, group
//! `sample_size` / `finish`, [`Bencher::iter`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros. Timing is a plain
//! mean over `sample_size` samples printed to stdout — no statistics,
//! no HTML reports — which is enough for the figure/table harnesses to
//! run and print their numbers.

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity, re-exported for bench bodies.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            name,
            sample_size: self.sample_size,
            _criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.to_string(), self.sample_size, f);
        self
    }
}

/// A named set of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

fn run_benchmark<F: FnMut(&mut Bencher)>(id: &str, samples: usize, mut f: F) {
    let mut bencher = Bencher {
        iterations: 0,
        elapsed: Duration::ZERO,
    };
    // One warmup pass, then the timed samples.
    f(&mut bencher);
    bencher.iterations = 0;
    bencher.elapsed = Duration::ZERO;
    for _ in 0..samples {
        f(&mut bencher);
    }
    let per_iter = if bencher.iterations == 0 {
        Duration::ZERO
    } else {
        bencher.elapsed / bencher.iterations as u32
    };
    println!(
        "bench {id}: {per_iter:?}/iter over {} iters",
        bencher.iterations
    );
}

/// Passed to each benchmark body to time its hot loop.
#[derive(Debug)]
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times repeated calls of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        black_box(f());
        self.elapsed += start.elapsed();
        self.iterations += 1;
    }
}

/// Bundles benchmark functions into one runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_body() {
        let mut c = Criterion::default();
        let mut runs = 0u32;
        c.benchmark_group("g")
            .sample_size(3)
            .bench_function("count", |b| b.iter(|| runs += 1));
        // warmup + 3 samples
        assert_eq!(runs, 4);
    }
}
