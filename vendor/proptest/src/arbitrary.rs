//! `any::<T>()` — type-driven default strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary {
    /// Generates one uniformly distributed value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}
