//! Collection strategies (`vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// An inclusive length range for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        Self {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// The strategy returned by [`vec()`](fn@vec).
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = if self.size.lo == self.size.hi {
            self.size.lo
        } else {
            self.size.lo + rng.index(self.size.hi - self.size.lo + 1)
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// A `Vec` of `size` elements drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn vec_respects_size_range(v in crate::collection::vec(0i32..10, 3..7)) {
            prop_assert!((3..7).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| (0..10).contains(&x)));
        }

        #[test]
        fn flat_map_and_tuples_compose(
            (n, v) in (1usize..=8).prop_flat_map(|n| {
                (Just(n), crate::collection::vec(any::<i8>(), n))
            }),
        ) {
            prop_assert_eq!(v.len(), n);
        }

        #[test]
        fn oneof_picks_from_the_list(x in prop_oneof![Just(1u8), Just(2), Just(3)]) {
            prop_assert!((1..=3).contains(&x));
        }
    }
}
