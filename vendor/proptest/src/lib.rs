//! Vendored std-only stand-in for the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the subset of proptest the repo's property tests
//! actually use: the [`proptest!`] macro (with optional
//! `#![proptest_config(...)]`), range / tuple / [`collection::vec`] /
//! [`arbitrary::any`] / [`strategy::Just`] strategies with `prop_map` and
//! `prop_flat_map`, [`prop_oneof!`], and the `prop_assert*` macros.
//!
//! Differences from upstream: generation is a deterministic per-test
//! stream (seeded from the test's module path and name), there is no
//! shrinking, and failures panic immediately with the assertion message.
//! Regression files under `proptest-regressions/` are ignored.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The conventional glob import for property tests.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a property test case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            panic!("prop_assert failed: {}", stringify!($cond));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            panic!("prop_assert failed: {}: {}", stringify!($cond), format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a property test case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            panic!("prop_assert_eq failed: {:?} != {:?}", left, right);
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            panic!(
                "prop_assert_eq failed: {:?} != {:?}: {}",
                left,
                right,
                format!($($fmt)+)
            );
        }
    }};
}

/// Asserts inequality inside a property test case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if left == right {
            panic!("prop_assert_ne failed: both sides are {:?}", left);
        }
    }};
}

/// Uniform choice between strategies of one type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![$($strategy),+])
    };
}

/// Defines property tests: each `fn name(bindings in strategies) { body }`
/// becomes a `#[test]` running `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { @cfg($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            @cfg($crate::test_runner::ProptestConfig::default())
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (@cfg($config:expr)) => {};
    (@cfg($config:expr)
     $(#[$attr:meta])*
     fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng = $crate::test_runner::TestRng::for_test(concat!(
                module_path!(),
                "::",
                stringify!($name)
            ));
            for _case in 0..config.cases {
                $(let $pat = $crate::strategy::Strategy::generate(&($strategy), &mut rng);)+
                $body
            }
        }
        $crate::__proptest_fns! { @cfg($config) $($rest)* }
    };
}
