//! The [`Strategy`] trait and the combinators the repo's tests use.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value from `rng`.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Derives a dependent strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among same-typed strategies (see [`crate::prop_oneof!`]).
#[derive(Debug, Clone)]
pub struct OneOf<S> {
    options: Vec<S>,
}

impl<S: Strategy> OneOf<S> {
    /// Chooses uniformly among `options`.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn new(options: Vec<S>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Self { options }
    }
}

impl<S: Strategy> Strategy for OneOf<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let i = rng.index(self.options.len());
        self.options[i].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let unit = rng.unit_f64();
                let v = (self.start as f64 + unit * (self.end as f64 - self.start as f64)) as $t;
                if v >= self.end { self.start } else { v }
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A);
    (A, B);
    (A, B, C);
    (A, B, C, D);
    (A, B, C, D, E);
}
