//! Per-test configuration and the deterministic generation stream.

/// How many cases a property test runs.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Deterministic SplitMix64 stream seeded from the test's name.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates the stream for the named test (FNV-1a of the name).
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self { state: h }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, 1)` with 53 mantissa bits.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform index in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "cannot pick from an empty set");
        (self.next_u64() % n as u64) as usize
    }
}
