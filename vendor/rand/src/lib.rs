//! Vendored std-only stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the minimal API surface the repo actually uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`RngExt::random_range`] over integer and float ranges, and
//! [`seq::SliceRandom::shuffle`]. The generator is a deterministic
//! SplitMix64, so seeded experiments stay reproducible across runs and
//! platforms (the streams differ from upstream `rand`, which is fine — no
//! test pins upstream values).

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self {
                // Avoid the all-zero fixed point and decorrelate tiny seeds.
                state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// A range values can be drawn from uniformly.
pub trait SampleRange {
    /// The element type produced.
    type Output;

    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // 53 uniform mantissa bits in [0, 1).
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                let v = self.start as f64 + unit * (self.end as f64 - self.start as f64);
                let v = v as $t;
                if v >= self.end { self.start } else { v }
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// Convenience sampling methods on any generator.
pub trait RngExt: RngCore {
    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample(self)
    }

    /// Draws a uniform value in `[0, 1)`.
    fn random_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Sequence-level helpers.
pub mod seq {
    use super::RngCore;

    /// In-place random reordering of slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle driven by `rng`.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random_range(-128i32..128), b.random_range(-128i32..128));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.random_range(-5i32..5);
            assert!((-5..5).contains(&v));
            let f = rng.random_range(0.25f32..0.75);
            assert!((0.25..0.75).contains(&f));
            let u = rng.random_range(3usize..=9);
            assert!((3..=9).contains(&u));
        }
    }

    #[test]
    fn shuffle_permutes_without_loss() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..64).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<_>>());
        assert_ne!(v, sorted, "64 elements virtually never shuffle to identity");
    }
}
